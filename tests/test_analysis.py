"""The invariant linter: every rule fires on a known violation and stays
silent on the fixed form; the suppression/baseline machinery behaves.

Fixture projects are built in memory with :meth:`Project.from_sources`
using relpaths that match the real tree's layout, because several rules
scope themselves by path (``evaluation/cache.py``, ``session.py``, …).
"""

import json
import subprocess
import textwrap

import pytest

from repro.analysis import default_rules, rule_registry, run_rules
from repro.analysis.callgraph import project_callgraph
from repro.analysis.framework import Finding, Project
from repro.analysis.rules.blocking import HoldWhileBlockingRule
from repro.analysis.rules.budgets import MonotonicRule, TickRule
from repro.analysis.rules.caching import IdKeyRule
from repro.analysis.rules.exceptions_rule import ExceptionTaxonomyRule
from repro.analysis.rules.forkstate import ForkStateRule
from repro.analysis.rules.guards import GuardedByRule
from repro.analysis.rules.lockorder import LOCK_ORDER, LockOrderRule, _find_cycle
from repro.analysis.rules.pickling import PoolPayloadRule
from repro.analysis.rules.versioning import VersionBumpRule
from repro.analysis.rules.yields import YieldUnderLockRule
from repro.analysis.runner import main as lint_main


def project(**sources):
    """Project from {name_with__for_slashes: dedented source}."""
    return Project.from_sources(
        {
            name.replace("__", "/") + ".py": textwrap.dedent(text)
            for name, text in sources.items()
        }
    )


def rule_findings(rule, proj):
    return [f for f in run_rules(proj, [rule]).findings if f.rule == rule.id]


# --- RP-VERSION ---------------------------------------------------------------

GRAPH_OK = """
    class RDFGraph:
        def add(self, triple):
            if triple in self._spo:
                return self
            self._version += 1
            self._insert(triple)
            return self

        def _insert(self, triple):
            self._spo.add(triple)

        def add_all(self, triples):
            batch = [t for t in triples if t not in self._spo]
            if not batch:
                return self
            self._version += 1
            self._spo.extend_sorted(sorted(batch))
            return self
"""


def test_version_rule_silent_on_disciplined_graph():
    assert rule_findings(VersionBumpRule(), project(src__repro__rdf__graph=GRAPH_OK)) == []


def test_version_rule_flags_mutation_without_bump():
    proj = project(
        src__repro__rdf__graph="""
        class RDFGraph:
            def add(self, triple):
                self._spo.add(triple)
                return self
        """
    )
    findings = rule_findings(VersionBumpRule(), proj)
    assert len(findings) == 1
    assert "no _version bump" in findings[0].message


def test_version_rule_flags_double_bump_and_bump_in_loop():
    proj = project(
        src__repro__rdf__graph="""
        class ReferenceRDFGraph:
            def add_all(self, triples):
                for t in triples:
                    self._triples.add(t)
                    self._version += 1
            def discard(self, t):
                self._triples.remove(t)
                self._version += 1
                self._version += 1
        """
    )
    messages = sorted(f.message for f in rule_findings(VersionBumpRule(), proj))
    assert any("inside a loop" in m for m in messages)
    assert any("bumps _version 2 times" in m for m in messages)


def test_version_rule_flags_bumping_method_called_in_loop():
    proj = project(
        src__repro__rdf__graph="""
        class RDFGraph:
            def add(self, t):
                self._version += 1
                self._spo.add(t)
            def add_all(self, triples):
                for t in triples:
                    self.add(t)
        """
    )
    findings = rule_findings(VersionBumpRule(), proj)
    assert any("bumping method add() inside a loop" in f.message for f in findings)


def test_version_rule_tracks_storage_aliases():
    proj = project(
        src__repro__rdf__graph="""
        class RDFGraph:
            def add_all(self, triples):
                spo = self._spo
                spo.extend_sorted(triples)
        """
    )
    findings = rule_findings(VersionBumpRule(), proj)
    assert len(findings) == 1 and "no _version bump" in findings[0].message


# --- RP-PICKLE ----------------------------------------------------------------

def test_pickle_rule_flags_hookless_payload_and_graphpattern():
    proj = project(
        src__repro__evaluation__session="""
        class Payload:
            pass

        def _init_worker(payload: Payload, pattern: "GraphPattern") -> None:
            pass
        """
    )
    messages = [f.message for f in rule_findings(PoolPayloadRule(), proj)]
    assert any("Payload defines no __reduce__" in m for m in messages)
    assert any("GraphPattern" in m for m in messages)


def test_pickle_rule_silent_on_reduce_dataclass_and_registered():
    proj = project(
        src__repro__evaluation__session="""
        from dataclasses import dataclass
        from typing import Optional

        class Forest:
            def __reduce__(self):
                return (Forest, ())

        @dataclass
        class Delta:
            entries: list

        def _init_worker(
            forest: Forest, delta: Delta, warm_session: Optional["Session"] = None
        ) -> None:
            pass

        class Session:
            pass
        """
    )
    assert rule_findings(PoolPayloadRule(), proj) == []


def test_pickle_rule_ignores_non_worker_functions():
    proj = project(
        src__repro__evaluation__session="""
        class Payload:
            pass

        def ordinary(payload: Payload) -> None:
            pass
        """
    )
    assert rule_findings(PoolPayloadRule(), proj) == []


# --- RP-IDKEY -----------------------------------------------------------------

CACHE_HEADER = """
    _DELTA_KINDS = frozenset({"hom", "subtree"})
    _TREE_KEYED_KINDS = frozenset({"subtree"})

    class EvaluationCache:
"""


def test_idkey_rule_flags_id_in_portable_kind_key():
    proj = project(
        src__repro__evaluation__cache=CACHE_HEADER
        + """
        def memo_hom(self, graph, source, store):
            key = (id(source), "hom")
            self._bounded_insert(graph, store, "hom", key, True)
        """
    )
    findings = rule_findings(IdKeyRule(), proj)
    assert len(findings) == 1 and "'hom'" in findings[0].message


def test_idkey_rule_allows_id_on_tree_keyed_kind():
    proj = project(
        src__repro__evaluation__cache=CACHE_HEADER
        + """
        def memo_subtree(self, graph, tree, store, nodes):
            self._bounded_insert(graph, store, "subtree", (id(tree),), nodes)
        """
    )
    assert rule_findings(IdKeyRule(), proj) == []


def test_idkey_rule_flags_id_flowing_into_cachedelta():
    proj = project(
        src__repro__evaluation__session="""
        def export(cache, graphs):
            return CacheDelta(versions={id(g): 0 for g in graphs}, entries=[])
        """
    )
    findings = rule_findings(IdKeyRule(), proj)
    assert len(findings) == 1 and "CacheDelta" in findings[0].message


# --- RP-TICK ------------------------------------------------------------------

def test_tick_rule_flags_untick_loops_and_accepts_fixed_form():
    bad = project(
        src__repro__evaluation__naive="""
        def evaluate_pattern(pattern, graph, budget=None):
            result = set()
            for triple in graph:
                result.add(triple)
            while result:
                result.pop()
            return result
        """
    )
    findings = rule_findings(TickRule(), bad)
    assert len(findings) == 2  # the for and the while

    good = project(
        src__repro__evaluation__naive="""
        def evaluate_pattern(pattern, graph, budget=None):
            result = set()
            for triple in graph:
                if budget is not None:
                    budget.tick()
                for extra in triple:  # inner loop amortized by the outer tick
                    result.add(extra)
            while result:
                budget.tick(1 + len(result))
                result.pop()
            return result
        """
    )
    assert rule_findings(TickRule(), good) == []


def test_tick_rule_reports_stale_registry_entry():
    proj = project(
        src__repro__evaluation__naive="""
        def renamed_entry_point(pattern, graph):
            return set()
        """
    )
    findings = rule_findings(TickRule(), proj)
    assert any("'evaluate_pattern' not found" in f.message for f in findings)


def test_tick_rule_checks_registered_nested_function():
    proj = project(
        src__repro__hom__homomorphism="""
        def _search(source, index, fixed, budget):
            def backtrack(current):
                for value in current:
                    yield value
            return backtrack(fixed)
        """
    )
    findings = rule_findings(TickRule(), proj)
    assert len(findings) == 1 and "_search.backtrack" in findings[0].message


# --- RP-MONO ------------------------------------------------------------------

def test_mono_rule_flags_wall_clock_forms():
    proj = project(
        src__repro__evaluation__budget="""
        import time
        from time import time as now
        from datetime import datetime

        def deadline(seconds):
            start = time.time()
            stamp = now()
            when = datetime.now()
            return start + seconds, stamp, when
        """
    )
    findings = rule_findings(MonotonicRule(), proj)
    # the import itself, time.time(), the aliased call, argless datetime.now()
    assert len(findings) == 4


def test_mono_rule_silent_on_monotonic_and_tz_aware():
    proj = project(
        src__repro__evaluation__budget="""
        import time
        from time import monotonic, sleep
        from datetime import datetime, timezone

        def deadline(seconds):
            sleep(0)
            stamped = datetime.now(timezone.utc)
            return monotonic() + seconds, time.monotonic(), stamped
        """
    )
    assert rule_findings(MonotonicRule(), proj) == []


# --- RP-EXC -------------------------------------------------------------------

def test_exc_rule_flags_foreign_raises_and_accepts_taxonomy():
    proj = project(
        src__repro__exceptions="""
        class ReproError(Exception):
            pass

        class EvaluationError(ReproError):
            pass
        """,
        src__repro__evaluation__engine="""
        from ..exceptions import EvaluationError

        class FaultInjected(EvaluationError):
            pass

        class RogueError(Exception):
            pass

        def run(mode):
            if mode == "taxonomy":
                raise EvaluationError("fine")
            if mode == "derived":
                raise FaultInjected("fine")
            if mode == "stdlib":
                raise ValueError("fine")
            if mode == "runtime":
                raise RuntimeError("not fine")
            raise RogueError("not fine")
        """,
    )
    findings = rule_findings(ExceptionTaxonomyRule(), proj)
    assert len(findings) == 2
    assert any("raise RuntimeError" in f.message for f in findings)
    assert any("raise RogueError" in f.message for f in findings)


def test_exc_rule_skips_bare_and_variable_reraise():
    proj = project(
        src__repro__evaluation__engine="""
        def run():
            try:
                pass
            except Exception as error:
                raise
            raise error
        """
    )
    assert rule_findings(ExceptionTaxonomyRule(), proj) == []


# --- RP-FORKSTATE -------------------------------------------------------------

FORKSTATE_BAD = """
    _WORKER_STATE = {}

    def _init_worker(graph):
        _WORKER_STATE["graph"] = graph
"""

FORKSTATE_GOOD = """
    # fork-safe: rebound wholesale by the initializer in every worker
    # process before any task runs; never read in the parent.
    _WORKER_STATE = {}

    def _init_worker(graph):
        _WORKER_STATE["graph"] = graph
"""


def test_forkstate_rule_requires_guard_comment():
    bad = project(src__repro__evaluation__session=FORKSTATE_BAD)
    findings = rule_findings(ForkStateRule(), bad)
    assert len(findings) == 1 and "_WORKER_STATE" in findings[0].message

    good = project(src__repro__evaluation__session=FORKSTATE_GOOD)
    assert rule_findings(ForkStateRule(), good) == []


def test_forkstate_rule_ignores_parent_side_functions():
    proj = project(
        src__repro__evaluation__session="""
        _SETTINGS = {}

        def configure(key, value):
            _SETTINGS[key] = value
        """
    )
    assert rule_findings(ForkStateRule(), proj) == []


def test_forkstate_rule_flags_mutator_calls_and_global_rebind():
    proj = project(
        src__repro__evaluation__session="""
        _WORKER_STATE = {}
        _ENUM_STATE = dict()

        def _init_worker(graph):
            _WORKER_STATE.update(graph=graph)

        def _init_enum_worker(graphs):
            global _ENUM_STATE
            _ENUM_STATE = {"graphs": graphs}
        """
    )
    messages = [f.message for f in rule_findings(ForkStateRule(), proj)]
    assert any("mutates module global _WORKER_STATE" in m for m in messages)
    assert any("rebinds module global _ENUM_STATE" in m for m in messages)


# --- the call graph -----------------------------------------------------------

STORE_SRC = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def add(self, item):
            self._bump()

        def _bump(self):
            self._note()

        def _note(self):
            self.count += 1

        def loop(self):
            return self.loop()

        def ping(self):
            return self.pong()

        def pong(self):
            return self.ping()
"""


def test_callgraph_self_call_closure():
    graph = project_callgraph(project(src__repro__store=STORE_SRC))
    info = graph.lookup("store.py", "Store.add")
    edges = graph.callees(info.ref)
    assert [edge.callee.qualname for edge in edges] == ["Store._bump"]
    assert edges[0].via_self
    reached = {ref.qualname for ref in graph.reachable(info.ref)}
    assert reached == {"Store.add", "Store._bump", "Store._note"}


def test_callgraph_max_depth_bounds_closure():
    graph = project_callgraph(project(src__repro__store=STORE_SRC))
    info = graph.lookup("store.py", "Store.add")
    reached = {ref.qualname for ref in graph.reachable(info.ref, max_depth=1)}
    assert reached == {"Store.add", "Store._bump"}


def test_callgraph_recursion_terminates():
    graph = project_callgraph(project(src__repro__store=STORE_SRC))
    direct = graph.lookup("store.py", "Store.loop")
    assert {r.qualname for r in graph.reachable(direct.ref)} == {"Store.loop"}
    mutual = graph.lookup("store.py", "Store.ping")
    assert {r.qualname for r in graph.reachable(mutual.ref)} == {
        "Store.ping",
        "Store.pong",
    }


def test_callgraph_attribute_method_resolution():
    proj = project(
        src__repro__svc="""
        class Stats:
            def note(self):
                self.hits += 1

        class Service:
            def __init__(self):
                self._stats = Stats()

            def record(self):
                self._stats.note()
        """
    )
    graph = project_callgraph(proj)
    assert graph.attr_type("Service", "_stats") == "Stats"
    info = graph.lookup("svc.py", "Service.record")
    edges = graph.callees(info.ref)
    assert [edge.callee.qualname for edge in edges] == ["Stats.note"]
    assert not edges[0].via_self  # different instance: never a same-lock proof


# --- RP-GUARD -----------------------------------------------------------------

def test_guard_rule_flags_access_outside_lock():
    proj = project(
        src__repro__counter="""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._hits += 1

            def peek(self):
                return self._hits
        """
    )
    findings = rule_findings(GuardedByRule(), proj)
    assert len(findings) == 1
    assert "Counter._hits accessed without holding" in findings[0].message
    assert "self._lock" in findings[0].message


def test_guard_rule_proves_helper_called_under_lock():
    proj = project(
        src__repro__counter="""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._advance()

            def _advance(self):
                self._hits += 1
        """
    )
    assert rule_findings(GuardedByRule(), proj) == []


def test_guard_rule_never_proves_public_methods():
    proj = project(
        src__repro__counter="""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self.advance()

            def advance(self):
                self._hits += 1
        """
    )
    findings = rule_findings(GuardedByRule(), proj)
    assert len(findings) == 1
    assert "Counter._hits" in findings[0].message


def test_guard_rule_flags_stale_guarded_by_comment():
    proj = project(
        src__repro__counter="""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0  # guarded-by: _missing
        """
    )
    findings = rule_findings(GuardedByRule(), proj)
    assert len(findings) == 1
    assert "not a lock attribute" in findings[0].message


# --- RP-LOCKORDER -------------------------------------------------------------

def test_lockorder_flags_cycle_and_unsanctioned_edges():
    proj = project(
        src__repro__pair="""
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
        """
    )
    messages = [f.message for f in rule_findings(LockOrderRule(), proj)]
    assert any("Pair._a -> Pair._b" in m for m in messages)
    assert any("Pair._b -> Pair._a" in m for m in messages)
    assert any("lock acquisition cycle" in m for m in messages)


def test_lockorder_flags_interprocedural_edge():
    proj = project(
        src__repro__nested="""
        import threading

        class Inner:
            def __init__(self):
                self._lock = threading.Lock()

            def note(self):
                with self._lock:
                    pass

        class Outer:
            def __init__(self):
                self._lock = threading.Lock()
                self._inner = Inner()

            def submit(self):
                with self._lock:
                    self._inner.note()
        """
    )
    findings = rule_findings(LockOrderRule(), proj)
    assert len(findings) == 1
    assert "Outer._lock -> Inner._lock" in findings[0].message
    assert "via Inner.note" in findings[0].message


def test_lockorder_accepts_sanctioned_edge_names():
    # The same shape as the live tree's one sanctioned edge: admission
    # bookkeeping (ServiceStats._lock) inside the admission lock.
    proj = project(
        src__repro__svc="""
        import threading

        class ServiceStats:
            def __init__(self):
                self._lock = threading.Lock()

            def note(self):
                with self._lock:
                    pass

        class QueryService:
            def __init__(self):
                self._lock = threading.Lock()
                self._stats = ServiceStats()

            def submit(self):
                with self._lock:
                    self._stats.note()
        """
    )
    assert rule_findings(LockOrderRule(), proj) == []


def test_lockorder_flags_nonreentrant_reacquisition():
    proj = project(
        src__repro__relock="""
        import threading

        class Relock:
            def __init__(self):
                self._lock = threading.Lock()
                self._rlock = threading.RLock()

            def bad(self):
                with self._lock:
                    with self._lock:
                        pass

            def fine(self):
                with self._rlock:
                    with self._rlock:
                        pass
        """
    )
    findings = rule_findings(LockOrderRule(), proj)
    assert len(findings) == 1
    assert "guaranteed deadlock" in findings[0].message


def test_sanctioned_lock_order_is_acyclic():
    assert _find_cycle(set(LOCK_ORDER)) is None


# --- RP-HOLD ------------------------------------------------------------------

def test_hold_rule_flags_blocking_queue_put_under_lock():
    proj = project(
        src__repro__pump="""
        import queue
        import threading

        class Pump:
            def __init__(self):
                self._lock = threading.Lock()
                self._queue = queue.Queue()

            def push(self, item):
                with self._lock:
                    self._queue.put(item)

            def push_fast(self, item):
                with self._lock:
                    self._queue.put_nowait(item)

            def pull(self):
                with self._lock:
                    return self._queue.get(timeout=0.5)
        """
    )
    findings = rule_findings(HoldWhileBlockingRule(), proj)
    assert len(findings) == 1
    assert "queue .put() without a timeout" in findings[0].message
    assert "Pump._lock" in findings[0].message


def test_hold_rule_follows_call_graph_to_blocking_op():
    proj = project(
        src__repro__pump="""
        import threading
        import time

        class Pump:
            def __init__(self):
                self._lock = threading.Lock()

            def drain(self):
                with self._lock:
                    self._settle()

            def _settle(self):
                time.sleep(0.1)
        """
    )
    findings = rule_findings(HoldWhileBlockingRule(), proj)
    assert len(findings) == 1
    assert "call to Pump._settle" in findings[0].message
    assert "reaches blocking time.sleep()" in findings[0].message


def test_hold_rule_condition_wait_releases_its_own_lock():
    proj = project(
        src__repro__gatelike="""
        import threading

        class GateLike:
            def __init__(self):
                self._cond = threading.Condition()

            def wait_turn(self):
                with self._cond:
                    self._cond.wait()
        """
    )
    assert rule_findings(HoldWhileBlockingRule(), proj) == []


def test_hold_rule_condition_wait_still_blocks_other_locks():
    proj = project(
        src__repro__gatelike="""
        import threading

        class TwoLocks:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition()

            def bad_wait(self):
                with self._lock:
                    with self._cond:
                        self._cond.wait()
        """
    )
    findings = rule_findings(HoldWhileBlockingRule(), proj)
    assert len(findings) == 1
    assert ".wait() without a timeout" in findings[0].message
    assert "TwoLocks._lock" in findings[0].message
    assert "TwoLocks._cond" not in findings[0].message  # released by wait()


# --- RP-YIELD -----------------------------------------------------------------

def test_yield_rule_flags_yield_under_lock_only():
    proj = project(
        src__repro__streamer="""
        import threading

        class Streamer:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def stream(self):
                with self._lock:
                    for item in self._items:
                        yield item

            def stream_snapshot(self):
                with self._lock:
                    snapshot = list(self._items)
                for item in snapshot:
                    yield item

            def make_gen(self):
                with self._lock:
                    def gen():
                        yield 1
                    return gen
        """
    )
    findings = rule_findings(YieldUnderLockRule(), proj)
    assert len(findings) == 1
    assert "yield while holding Streamer._lock" in findings[0].message


# --- suppressions -------------------------------------------------------------

def test_suppression_on_exact_line_silences_the_rule():
    proj = project(
        src__repro__evaluation__budget="""
        import time

        def stamp():
            return time.time()  # repro: ignore[RP-MONO]
        """
    )
    result = run_rules(proj, default_rules())
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["RP-MONO"]


def test_suppression_on_wrong_line_does_not_silence():
    proj = project(
        src__repro__evaluation__budget="""
        import time

        # repro: ignore[RP-MONO]
        def stamp():
            return time.time()
        """
    )
    result = run_rules(proj, default_rules())
    assert [f.rule for f in result.findings] == ["RP-MONO"]


def test_suppression_with_unknown_rule_id_is_a_finding():
    proj = project(
        src__repro__evaluation__budget="""
        x = 1  # repro: ignore[RP-NOPE]
        """
    )
    result = run_rules(proj, default_rules())
    assert [f.rule for f in result.findings] == ["RP-SUPPRESS"]
    assert "RP-NOPE" in result.findings[0].message


def test_docstring_mentioning_suppression_syntax_is_inert():
    proj = project(
        src__repro__evaluation__budget='''
        """Docs may show `# repro: ignore[RP-NOPE]` without activating it."""
        '''
    )
    assert run_rules(proj, default_rules()).findings == []


def test_syntax_error_becomes_parse_finding():
    proj = project(src__repro__evaluation__budget="def broken(:\n")
    result = run_rules(proj, default_rules())
    assert [f.rule for f in result.findings] == ["RP-PARSE"]


# --- baseline machinery (through the CLI driver) ------------------------------

@pytest.fixture
def fake_repo(tmp_path):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "clock.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    return tmp_path


def baseline_entry():
    return {
        "rule": "RP-MONO",
        "path": "src/repro/clock.py",
        "message": "time.time() is wall clock; deadline/budget code "
        "must use time.monotonic()",
        "rationale": "historic wall-clock stamp kept for log compatibility",
    }


def write_baseline(root, entries):
    (root / "analysis-baseline.json").write_text(json.dumps({"entries": entries}))


def test_runner_reports_findings_and_exit_code(fake_repo, capsys):
    assert lint_main(["--root", str(fake_repo)]) == 1
    out = capsys.readouterr().out
    assert "RP-MONO" in out and "src/repro/clock.py:5" in out


def test_runner_baselined_finding_passes(fake_repo):
    write_baseline(fake_repo, [baseline_entry()])
    assert lint_main(["--root", str(fake_repo)]) == 0


def test_runner_reports_stale_baseline_entry(fake_repo, capsys):
    entry = baseline_entry()
    entry["message"] = "a finding that never fires"
    write_baseline(fake_repo, [baseline_entry(), entry])
    assert lint_main(["--root", str(fake_repo)]) == 1
    assert "stale baseline entry" in capsys.readouterr().err


def test_runner_requires_baseline_rationale(fake_repo, capsys):
    entry = baseline_entry()
    entry["rationale"] = "   "
    write_baseline(fake_repo, [entry])
    assert lint_main(["--root", str(fake_repo)]) == 1
    assert "no rationale" in capsys.readouterr().err


def test_runner_github_format(fake_repo, capsys):
    assert lint_main(["--root", str(fake_repo), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=src/repro/clock.py,line=5,title=RP-MONO::" in out


def test_runner_rules_filter_selects_rules(fake_repo):
    assert lint_main(["--root", str(fake_repo), "--rules", "RP-TICK"]) == 0
    assert lint_main(["--root", str(fake_repo), "--rules", "RP-MONO"]) == 1


def test_runner_unknown_rule_id_is_usage_error(fake_repo, capsys):
    assert lint_main(["--root", str(fake_repo), "--rules", "RP-NOPE"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_runner_partial_run_skips_stale_baseline_check(fake_repo):
    stale = baseline_entry()
    stale["message"] = "a finding that never fires"
    write_baseline(fake_repo, [baseline_entry(), stale])
    assert lint_main(["--root", str(fake_repo)]) == 1  # full run: stale fails
    assert lint_main(["--root", str(fake_repo), "--rules", "RP-MONO"]) == 0


def test_runner_timings_prints_per_rule(fake_repo, capsys):
    lint_main(["--root", str(fake_repo), "--timings", "--rules", "RP-MONO"])
    assert "timing: RP-MONO:" in capsys.readouterr().err


def test_runner_changed_filters_findings_by_git_diff(fake_repo, capsys):
    subprocess.run(["git", "init", "-q"], cwd=fake_repo, check=True)
    subprocess.run(["git", "add", "."], cwd=fake_repo, check=True)
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit", "-qm", "seed"],
        cwd=fake_repo,
        check=True,
    )
    # nothing changed since the commit -> the RP-MONO finding is filtered out
    assert lint_main(["--root", str(fake_repo), "--changed"]) == 0
    clock = fake_repo / "src" / "repro" / "clock.py"
    clock.write_text(clock.read_text() + "\n# touched\n")
    assert lint_main(["--root", str(fake_repo), "--changed"]) == 1
    out = capsys.readouterr()
    assert "changed-files filter" in out.err
    assert "RP-MONO" in out.out


# --- the live tree ------------------------------------------------------------

def test_live_tree_is_clean(capsys):
    """`python -m repro.analysis` on the real src/repro: no new findings."""
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    assert lint_main(["--root", str(root)]) == 0, capsys.readouterr().out


def test_registry_ids_are_unique_and_prefixed():
    registry = rule_registry()
    assert len(registry) >= 13
    assert all(rule_id.startswith("RP-") for rule_id in registry)
    rules = default_rules()
    assert len({rule.id for rule in rules}) == len(rules)


def test_cli_lint_subcommand_dispatches():
    from repro.cli import main as cli_main
    from pathlib import Path
    import os

    cwd = os.getcwd()
    root = Path(__file__).resolve().parent.parent
    try:
        os.chdir(root)
        assert cli_main(["lint"]) == 0
    finally:
        os.chdir(cwd)


def test_finding_formats():
    finding = Finding(path="src/repro/x.py", line=3, rule="RP-MONO", message="a :: b\nc")
    assert finding.format_text() == "src/repro/x.py:3: RP-MONO: a :: b\nc"
    assert finding.format_github() == "::error file=src/repro/x.py,line=3,title=RP-MONO::a : b c"
