"""Unit tests for the batch evaluation service layer."""

import pickle

import pytest

from repro.evaluation import (
    BatchEngine,
    Engine,
    EvaluationCache,
    EvaluationStatistics,
    contains_many_patterns,
    contains_matrix,
)
from repro.exceptions import EvaluationError
from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX
from repro.rdf.terms import IRI, Variable
from repro.sparql import Mapping, parse_pattern
from repro.workloads.families import fk_data_graph, fk_forest, tprime_data_graph, tprime_tree
from repro.patterns import WDPatternForest


@pytest.fixture
def setting():
    forest = fk_forest(2)
    graph = fk_data_graph(6, 30, clique_size=2, seed=2)
    engine = Engine(forest=forest, width_bound=1)
    solutions = sorted(engine.solutions(graph, method="natural"), key=repr)[:6]
    queries = list(solutions)
    for mu in solutions[:3]:
        bindings = mu.as_dict()
        first = sorted(bindings, key=lambda v: v.name)[0]
        bindings[first] = IRI("http://example.org/__nowhere__")
        queries.append(Mapping(bindings))
    return forest, graph, engine, queries


class TestContainsMany:
    @pytest.mark.parametrize("method", ["naive", "natural", "pebble", "auto"])
    def test_identical_to_single_shot(self, setting, method):
        forest, graph, engine, queries = setting
        expected = [engine.contains(graph, mu, method=method) for mu in queries]
        batch = BatchEngine(forest=forest, width_bound=1)
        assert batch.contains_many(graph, queries, method=method) == expected

    def test_preserves_order_and_duplicates(self, setting):
        forest, graph, engine, queries = setting
        doubled = queries + list(reversed(queries))
        batch = BatchEngine(forest=forest, width_bound=1)
        answers = batch.contains_many(graph, doubled)
        assert answers == [engine.contains(graph, mu) for mu in doubled]
        assert answers[: len(queries)] == list(reversed(answers[len(queries) :]))

    def test_empty_input(self, setting):
        forest, graph, _, _ = setting
        assert BatchEngine(forest=forest).contains_many(graph, []) == []

    def test_parallel_identical(self, setting):
        forest, graph, engine, queries = setting
        expected = [engine.contains(graph, mu, method="pebble") for mu in queries]
        batch = BatchEngine(forest=forest, width_bound=1, processes=2)
        assert batch.contains_many(graph, queries, method="pebble") == expected
        # per-call override too
        batch2 = BatchEngine(forest=forest, width_bound=1)
        assert batch2.contains_many(graph, queries, method="pebble", processes=2) == expected

    def test_statistics_accumulated_serially(self, setting):
        forest, graph, _, queries = setting
        statistics = EvaluationStatistics()
        BatchEngine(forest=forest, width_bound=1).contains_many(
            graph, queries, method="natural", statistics=statistics
        )
        assert statistics.trees_visited > 0

    def test_auto_resolved_once(self, setting):
        forest, graph, engine, queries = setting
        batch = BatchEngine(forest=forest, width_bound=1)
        expected = [engine.contains(graph, mu, method="auto") for mu in queries]
        assert batch.contains_many(graph, queries, method="auto") == expected

    def test_naive_batched_materialises_once(self, setting):
        forest, graph, engine, queries = setting
        batch = BatchEngine(forest=forest, width_bound=1)
        expected = [engine.contains(graph, mu, method="naive") for mu in queries]
        assert batch.contains_many(graph, queries, method="naive") == expected


class TestConstruction:
    def test_requires_pattern_or_forest(self):
        with pytest.raises(EvaluationError):
            BatchEngine()

    def test_invalid_processes(self):
        with pytest.raises(EvaluationError):
            BatchEngine(parse_pattern("(?x p ?y)"), processes=0)

    def test_creates_cache_by_default(self):
        batch = BatchEngine(parse_pattern("(?x p ?y)"))
        assert isinstance(batch.cache, EvaluationCache)
        assert batch.engine.cache is batch.cache

    def test_from_engine_shares_cache(self):
        cache = EvaluationCache()
        engine = Engine(parse_pattern("(?x p ?y)"), cache=cache)
        batch = BatchEngine.from_engine(engine)
        assert batch.cache is cache

    def test_passthroughs(self):
        graph = RDFGraph([Triple.of("a", "knows", "b")])
        batch = BatchEngine(parse_pattern("((?x knows ?y) OPT (?y email ?e))"))
        mu = Mapping.of(x="a", y="b")
        assert batch.contains(graph, mu) is True
        assert len(batch.solutions(graph)) == 1
        assert batch.pattern is not None
        assert len(batch.forest) == 1
        assert "BatchEngine" in repr(batch)


class TestResolveMethod:
    def test_resolution_matches_contains(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        assert engine.resolve_method("natural") == ("natural", None)
        assert engine.resolve_method("naive") == ("naive", None)
        assert engine.resolve_method("pebble") == ("pebble", 1)
        assert engine.resolve_method("auto") == ("pebble", 1)
        assert engine.resolve_method("auto", width=2) == ("pebble", 2)

    def test_auto_without_bound_is_natural(self):
        engine = Engine(forest=fk_forest(2))
        assert engine.resolve_method("auto") == ("natural", None)
        # Once the domination width has been computed, auto upgrades to pebble.
        engine.domination_width()
        assert engine.resolve_method("auto") == ("pebble", 1)

    def test_unknown_method(self):
        with pytest.raises(EvaluationError):
            Engine(forest=fk_forest(2)).resolve_method("quantum")


class TestManyPatterns:
    def test_contains_many_patterns(self):
        graph = tprime_data_graph(8, 30, seed=6)
        patterns = [
            WDPatternForest([tprime_tree(2)]),
            WDPatternForest([tprime_tree(3)]),
            parse_pattern("(?x p ?y)"),
        ]
        solutions = sorted(
            Engine(forest=patterns[0]).solutions(graph, method="natural"), key=repr
        )
        if not solutions:
            pytest.skip("random data graph produced no solutions")
        mu = solutions[0]
        answers = contains_many_patterns(patterns, graph, mu, method="natural")
        expected = [
            Engine(forest=patterns[0]).contains(graph, mu, method="natural"),
            Engine(forest=patterns[1]).contains(graph, mu, method="natural"),
            Engine(parse_pattern("(?x p ?y)")).contains(graph, mu, method="natural"),
        ]
        assert answers == expected

    def test_contains_matrix_shape_and_answers(self):
        forest2, forest3 = WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])
        graph = tprime_data_graph(8, 30, seed=4)
        mus = sorted(Engine(forest=forest2).solutions(graph, method="natural"), key=repr)[:3]
        mus.append(Mapping({Variable("y"): EX.term("nowhere")}))
        matrix = contains_matrix([forest2, forest3], graph, mus, method="natural")
        assert len(matrix) == 2 and all(len(row) == len(mus) for row in matrix)
        for row, forest in zip(matrix, (forest2, forest3)):
            engine = Engine(forest=forest)
            assert row == [engine.contains(graph, mu, method="natural") for mu in mus]

    def test_shared_cache_is_used(self):
        cache = EvaluationCache()
        graph = tprime_data_graph(6, 20, seed=1)
        forest = WDPatternForest([tprime_tree(2)])
        mu = Mapping({Variable("y"): EX.term("nowhere")})
        contains_many_patterns([forest, forest], graph, mu, method="natural", cache=cache)
        assert cache.statistics.hits + cache.statistics.misses > 0

    def test_rejects_non_pattern(self):
        with pytest.raises(EvaluationError):
            contains_many_patterns([42], RDFGraph(), Mapping.EMPTY)


class TestPicklability:
    def test_engine_building_blocks_round_trip(self):
        forest = fk_forest(2)
        graph = fk_data_graph(4, 12, clique_size=2, seed=1)
        mu = Mapping.of(x="http://example.org/a")
        for obj in (forest, forest[0], graph, mu):
            clone = pickle.loads(pickle.dumps(obj))
            assert type(clone) is type(obj)
        graph_clone = pickle.loads(pickle.dumps(graph))
        assert graph_clone == graph
        assert pickle.loads(pickle.dumps(mu)) == mu
