"""`scripts/bench_all.py` discovery: the perf-record driver must find every
``BENCH_*``-writing benchmark (what CI runs and uploads as artifacts)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import bench_all  # noqa: E402


class TestDiscovery:
    def test_every_record_writing_benchmark_is_discovered(self):
        found = {script.name: record for script, record, _smoke in bench_all.discover()}
        assert found["bench_pebble_kernel.py"] == "BENCH_pebble_kernel.json"
        assert found["bench_session_enumeration.py"] == "BENCH_session_enumeration.json"
        assert found["bench_large_graph.py"] == "BENCH_large_graph.json"
        assert found["bench_service_load.py"] == "BENCH_service_load.json"

    def test_discovered_benchmarks_support_smoke_mode(self):
        """CI runs the driver without --full; every discovered script must
        advertise --smoke so the records refresh in seconds."""
        benchmarks = bench_all.discover()
        assert benchmarks, "discovery found nothing"
        for script, record, supports_smoke in benchmarks:
            assert supports_smoke, f"{script.name} writes {record} but has no --smoke"

    def test_list_mode_prints_without_running(self, capsys):
        assert bench_all.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_session_enumeration.json" in out
        assert "(smoke)" in out
