"""Cache correctness: memoized evaluation must be indistinguishable from
fresh single-shot evaluation, across engines, methods and graph mutation."""

import random

import pytest

from repro.evaluation import BatchEngine, Engine, EvaluationCache
from repro.evaluation.cache import CacheStatistics
from repro.hom import TargetIndex, all_homomorphisms, target_index
from repro.hom.tgraph import TGraph
from repro.rdf import RDFGraph, Triple
from repro.rdf.generators import random_graph
from repro.rdf.namespace import EX
from repro.rdf.terms import IRI, Variable
from repro.sparql import Mapping
from repro.workloads.families import fk_data_graph, fk_forest
from repro.workloads.random_patterns import random_wd_forest


def _membership_workload(forest, graph, rng, limit=12):
    """Solutions, perturbed near-solutions and random junk mappings."""
    engine = Engine(forest=forest)
    solutions = sorted(engine.solutions(graph, method="natural"), key=repr)[:limit]
    queries = list(solutions)
    for mu in solutions:
        bindings = mu.as_dict()
        if not bindings:
            continue
        var = sorted(bindings, key=lambda v: v.name)[rng.randrange(len(bindings))]
        bindings[var] = IRI("http://example.org/__nowhere__")
        queries.append(Mapping(bindings))
        queries.append(mu.restrict(list(mu.domain())[:1]))
    queries.append(Mapping.EMPTY)
    return queries


class TestCachedAnswersIdentical:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_workloads_all_methods(self, seed):
        rng = random.Random(seed)
        forest = random_wd_forest(num_trees=2, num_nodes=3, seed=seed)
        graph = random_graph(8, 40, seed=seed)
        queries = _membership_workload(forest, graph, rng)
        plain = Engine(forest=forest)
        cached = Engine(forest=forest, cache=EvaluationCache())
        batch = BatchEngine(forest=forest)
        for method in ("naive", "natural", "pebble"):
            expected = [plain.contains(graph, mu, method=method, width=2) for mu in queries]
            # cached single calls, twice (cold and warm cache)
            for _ in range(2):
                got = [cached.contains(graph, mu, method=method, width=2) for mu in queries]
                assert got == expected, method
            # batched, twice
            for _ in range(2):
                assert batch.contains_many(graph, queries, method=method, width=2) == expected

    def test_shared_cache_across_engines(self):
        forest = fk_forest(2)
        graph = fk_data_graph(6, 30, clique_size=2, seed=5)
        cache = EvaluationCache()
        first = Engine(forest=forest, width_bound=1, cache=cache)
        second = Engine(forest=forest, width_bound=1, cache=cache)
        plain = Engine(forest=forest, width_bound=1)
        queries = _membership_workload(fk_forest(2), graph, random.Random(5))
        for mu in queries:
            expected = plain.contains(graph, mu, method="natural")
            assert first.contains(graph, mu, method="natural") == expected
            assert second.contains(graph, mu, method="natural") == expected
        assert cache.statistics.hits > 0

    def test_warm_cache_hits(self):
        forest = fk_forest(2)
        graph = fk_data_graph(6, 36, clique_size=2, seed=9)
        batch = BatchEngine(forest=forest, width_bound=1)
        queries = _membership_workload(forest, graph, random.Random(9))
        batch.contains_many(graph, queries, method="pebble")
        misses_after_cold = batch.cache.statistics.misses
        batch.contains_many(graph, queries, method="pebble")
        # The warm run must answer entirely from the cache.
        assert batch.cache.statistics.misses == misses_after_cold
        assert batch.cache.statistics.hits > 0


class TestInvalidationOnMutation:
    @pytest.mark.parametrize("method", ["natural", "pebble"])
    def test_mutation_invalidates(self, method):
        forest = fk_forest(2)
        graph = fk_data_graph(6, 36, clique_size=2, seed=3)
        batch = BatchEngine(forest=forest, width_bound=1)
        queries = _membership_workload(forest, graph, random.Random(3))
        before = batch.contains_many(graph, queries, method=method)

        removed = sorted(graph, key=repr)[: len(graph) // 2]
        for t in removed:
            graph.discard(t)
        fresh = [Engine(forest=forest, width_bound=1).contains(graph, mu, method=method) for mu in queries]
        assert batch.contains_many(graph, queries, method=method) == fresh

        for t in removed:
            graph.add(t)
        assert batch.contains_many(graph, queries, method=method) == before
        assert batch.cache.statistics.invalidations >= 2

    def test_added_triple_changes_answer(self):
        # ((?x p ?y) OPT (?y q ?z)): once bob gets a q-edge, the y-only
        # mapping stops being maximal.  The cache must notice the mutation.
        from repro.sparql import parse_pattern

        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        engine = Engine(parse_pattern(f"((?x <{EX.p.value}> ?y) OPT (?y <{EX.q.value}> ?z))"),
                        cache=EvaluationCache())
        mu = Mapping({Variable("x"): EX.a, Variable("y"): EX.b})
        assert engine.contains(graph, mu, method="natural") is True
        graph.add(Triple.of(EX.b, EX.q, EX.c))
        assert engine.contains(graph, mu, method="natural") is False
        graph.discard(Triple.of(EX.b, EX.q, EX.c))
        assert engine.contains(graph, mu, method="natural") is True

    def test_explicit_invalidate_and_clear(self):
        forest = fk_forest(2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=1)
        cache = EvaluationCache()
        engine = Engine(forest=forest, width_bound=1, cache=cache)
        mu = Mapping({Variable("x"): EX.term("nowhere"), Variable("y"): EX.term("nowhere")})
        engine.contains(graph, mu, method="natural")
        cache.invalidate(graph)
        engine.contains(graph, mu, method="natural")
        cache.invalidate()
        cache.clear()
        assert engine.contains(graph, mu, method="natural") is False


class TestEnumerationMemos:
    def test_homomorphism_list_matches_direct_search(self):
        cache = EvaluationCache()
        graph = random_graph(6, 25, seed=3)
        source = TGraph(list(fk_forest(2))[0].pat(list(fk_forest(2))[0].root))
        cached = cache.homomorphism_list(source, graph)
        direct = list(all_homomorphisms(source, graph))
        assert sorted(map(repr, cached)) == sorted(map(repr, direct))
        before = cache.statistics.enum_hits
        assert cache.homomorphism_list(source, graph) == cached
        assert cache.statistics.enum_hits == before + 1

    def test_homomorphism_stream_lazy_records_only_on_completion(self):
        """An abandoned stream must not record a (partial) answer list, and
        a fresh stream stays lazy — only exhaustion creates the memo."""
        cache = EvaluationCache()
        graph = random_graph(6, 25, seed=3)
        source = TGraph(list(fk_forest(2))[0].pat(list(fk_forest(2))[0].root))
        abandoned = cache.homomorphisms_stream(source, graph)
        next(abandoned)  # consume one result, drop the generator
        del abandoned
        full = list(cache.homomorphisms_stream(source, graph))  # still a miss
        assert cache.statistics.enum_hits == 0
        assert cache.statistics.enum_misses == 2
        replayed = list(cache.homomorphisms_stream(source, graph))  # now a hit
        assert cache.statistics.enum_hits == 1
        assert replayed == full

    def test_homomorphism_list_invalidated_by_mutation(self):
        from repro.sparql import parse_pattern
        from repro.patterns.build import wdpf

        cache = EvaluationCache()
        graph = RDFGraph(
            [Triple.of("http://example.org/a", "http://example.org/p", "http://example.org/b")]
        )
        tree = list(wdpf(parse_pattern("(?x <http://example.org/p> ?y)")))[0]
        source = tree.pat(tree.root)
        first = cache.homomorphism_list(source, graph)
        assert len(first) == 1
        graph.add(Triple.of("http://example.org/c", "http://example.org/p", "http://example.org/d"))
        second = cache.homomorphism_list(source, graph)
        assert len(second) == 2

    def test_homomorphism_stream_mutation_after_creation_never_poisons(self):
        """A graph mutation between stream creation and consumption must not
        record a stale list under the new version (regression)."""
        from repro.sparql import parse_pattern
        from repro.patterns.build import wdpf

        cache = EvaluationCache()
        graph = RDFGraph(
            [Triple.of("http://example.org/a", "http://example.org/p", "http://example.org/b")]
        )
        tree = list(wdpf(parse_pattern("(?x <http://example.org/p> ?y)")))[0]
        source = tree.pat(tree.root)
        stream = cache.homomorphisms_stream(source, graph)
        graph.add(Triple.of("http://example.org/c", "http://example.org/p", "http://example.org/d"))
        list(stream)  # consumed after the mutation: must not be recorded
        fresh = cache.homomorphism_list(source, graph)
        assert len(fresh) == 2  # the post-mutation truth, not a stale replay

    def test_tree_solution_list_roundtrip_and_eviction(self):
        cache = EvaluationCache()
        graph = random_graph(6, 25, seed=5)
        forest = fk_forest(2)
        tree = list(forest)[0]
        assert cache.tree_solution_list(tree, graph) is None  # miss
        engine = Engine(forest=forest, cache=cache)
        answers = engine.solutions(graph, method="natural")
        recorded = cache.tree_solution_list(tree, graph)
        assert recorded is not None and set(recorded) <= answers
        # Mutation invalidates transparently.
        graph.add(Triple.of(str(EX["zzz"]), str(EX["zzz"]), str(EX["zzz"])))
        assert cache.tree_solution_list(tree, graph) is None


class TestCacheInternals:
    def test_statistics_counters(self):
        stats = CacheStatistics()
        assert stats.hits == 0 and stats.misses == 0
        assert stats.hit_rate() == 0.0
        stats.hom_hits += 3
        stats.hom_misses += 1
        assert stats.hits == 3 and stats.misses == 1
        assert stats.hit_rate() == pytest.approx(0.75)
        assert "hom_hits" in stats.as_dict()
        assert "hits=3" in repr(stats)

    def test_max_entries_evicts(self):
        cache = EvaluationCache(max_entries_per_graph=2)
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        tg = lambda name: TGraph.of(("?" + name, EX.p.value, "?y"))
        for name in ("u", "v", "w", "x"):
            cache.extension_exists(tg(name), graph, Mapping.EMPTY)
        assert cache.statistics.evictions >= 2

    def test_max_entries_bounds_tree_tables(self):
        # The per-tree structure tables pin their trees; a bounded cache must
        # also bound them, with correct answers after eviction.
        cache = EvaluationCache(max_entries_per_graph=2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=4)
        queries = None
        for seed in range(5):
            forest = random_wd_forest(num_trees=1, num_nodes=2, seed=seed)
            engine = Engine(forest=forest, cache=cache)
            plain = Engine(forest=forest)
            queries = _membership_workload(forest, graph, random.Random(seed), limit=3)
            for mu in queries:
                assert engine.contains(graph, mu, method="natural") == plain.contains(
                    graph, mu, method="natural"
                )
        assert len(cache._trees) <= 2

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_entries_per_graph=0)

    def test_lru_hot_entries_survive_eviction_pressure(self):
        # Recency-based eviction: an entry touched between insertions of cold
        # entries must never be evicted, however many cold entries stream by.
        cache = EvaluationCache(max_entries_per_graph=3)
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        hot = TGraph.of(("?hot", EX.p.value, "?y"))
        cache.extension_exists(hot, graph, Mapping.EMPTY)
        assert cache.statistics.hom_misses == 1
        for index in range(20):
            cold = TGraph.of((f"?cold{index}", EX.p.value, "?y"))
            cache.extension_exists(cold, graph, Mapping.EMPTY)
            cache.extension_exists(hot, graph, Mapping.EMPTY)  # keep it recent
        # The hot instance was computed exactly once; every later lookup hit.
        assert cache.statistics.hom_misses == 1 + 20
        assert cache.statistics.hom_hits == 20
        assert cache.statistics.evictions > 0

    def test_fifo_would_evict_hot_entry_without_recency(self):
        # Sanity check of the pressure in the test above: entries *not*
        # refreshed under the same stream do get evicted and recomputed.
        cache = EvaluationCache(max_entries_per_graph=3)
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        stale = TGraph.of(("?stale", EX.p.value, "?y"))
        cache.extension_exists(stale, graph, Mapping.EMPTY)
        for index in range(20):
            cold = TGraph.of((f"?cold{index}", EX.p.value, "?y"))
            cache.extension_exists(cold, graph, Mapping.EMPTY)
        cache.extension_exists(stale, graph, Mapping.EMPTY)
        assert cache.statistics.hom_hits == 0  # it was evicted and recomputed

    def test_kernel_entries_use_size_accounting(self):
        from repro.workloads.families import fk_data_graph, fk_forest

        forest = fk_forest(2)
        graph = fk_data_graph(6, 36, clique_size=2, seed=9)
        unbounded = EvaluationCache()
        built = unbounded.warm_pebble(forest, graph, pebbles=2)
        assert built >= 1
        # A tiny budget cannot hold a kernel's precomputed state plus a
        # stream of other entries: eviction must kick in, answers stay right.
        bounded = EvaluationCache(max_entries_per_graph=5)
        engine = Engine(forest=forest, width_bound=1, cache=bounded)
        plain = Engine(forest=forest, width_bound=1)
        queries = _membership_workload(forest, graph, random.Random(9), limit=5)
        for mu in queries:
            assert engine.contains(graph, mu, method="pebble") == plain.contains(
                graph, mu, method="pebble"
            )
        assert bounded.statistics.evictions > 0

    def test_repr_counts_entries(self):
        cache = EvaluationCache()
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        cache.extension_exists(TGraph.of(("?x", EX.p.value, "?y")), graph, Mapping.EMPTY)
        assert "1 graphs" in repr(cache)

    def test_store_evicted_when_graph_collected(self):
        cache = EvaluationCache()
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        cache.extension_exists(TGraph.of(("?x", EX.p.value, "?y")), graph, Mapping.EMPTY)
        assert len(cache._graphs) == 1
        del graph
        import gc

        gc.collect()
        assert len(cache._graphs) == 0


class TestTargetIndexReuse:
    def test_prebuilt_index_matches_fresh_search(self):
        graph = random_graph(6, 25, seed=7)
        index = target_index(graph)
        assert isinstance(index, TargetIndex)
        source = TGraph.of(("?x", EX.p.value, "?y"), ("?y", EX.q.value, "?z"))
        fresh = sorted(all_homomorphisms(source, graph), key=repr)
        reused = sorted(all_homomorphisms(source, graph, index=index), key=repr)
        assert fresh == reused


class TestSizeAccounting:
    """Pin the LRU charges so the docs (1 + len(list) per answer list, 1 per
    plain memo entry) cannot drift from the implementation again."""

    def _store(self, cache, graph):
        return cache._graphs[id(graph)]

    def test_homomorphism_list_charged_one_plus_length(self):
        cache = EvaluationCache()
        graph = random_graph(6, 25, seed=3)
        source = TGraph(list(fk_forest(2))[0].pat(list(fk_forest(2))[0].root))
        homs = cache.homomorphism_list(source, graph)
        assert len(homs) > 1  # the charge must actually exceed a plain entry
        key = ("homlist", (source.triples(),))
        assert self._store(cache, graph).costs[key] == 1 + len(homs)

    def test_tree_solution_list_charged_one_plus_length(self):
        cache = EvaluationCache()
        graph = random_graph(6, 25, seed=5)
        forest = fk_forest(2)
        tree = list(forest)[0]
        Engine(forest=forest, cache=cache).solutions(graph, method="natural")
        recorded = cache.tree_solution_list(tree, graph)
        assert recorded is not None
        key = ("treesol", (id(tree),))
        assert self._store(cache, graph).costs[key] == 1 + len(recorded)

    def test_plain_memo_entries_charged_one(self):
        cache = EvaluationCache()
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        source = TGraph.of(("?x", EX.p.value, "?y"))
        cache.extension_exists(source, graph, Mapping.EMPTY)
        store = self._store(cache, graph)
        (key,) = [k for k in store.costs if k[0] == "hom"]
        assert store.costs[key] == 1


class TestCacheDelta:
    """The worker return channel: export_delta / absorb round-trips."""

    def _enumerated_cache(self, graph, forest):
        """A journaling cache that enumerated *forest* over *graph*."""
        cache = EvaluationCache()
        cache.collect_deltas()
        Engine(forest=forest, cache=cache).solutions(graph, method="natural")
        return cache

    def test_export_absorb_roundtrip_replays_enumeration(self):
        import pickle

        graph = random_graph(6, 25, seed=11)
        forest = fk_forest(2)
        trees = list(forest)
        worker = self._enumerated_cache(graph, forest)
        delta = worker.export_delta([graph], trees, [graph.version])
        assert delta is not None and len(delta) > 0
        # The delta is the picklable currency of the return channel.
        delta = pickle.loads(pickle.dumps(delta))

        parent = EvaluationCache()
        absorbed = parent.absorb(delta, [graph], trees)
        assert absorbed == len(delta)
        assert parent.statistics.delta_entries == absorbed
        # The parent now replays the complete enumeration from memory.
        for tree in trees:
            assert parent.tree_solution_list(tree, graph) is not None
        hits_before = parent.statistics.enum_hits
        answers = Engine(forest=forest, cache=parent).solutions(graph, method="natural")
        assert answers == Engine(forest=forest).solutions(graph, method="natural")
        assert parent.statistics.enum_hits > hits_before

    def test_journal_off_exports_none(self):
        graph = random_graph(5, 20, seed=2)
        forest = fk_forest(2)
        cache = EvaluationCache()
        Engine(forest=forest, cache=cache).solutions(graph, method="natural")
        assert not cache.collecting_deltas
        assert cache.export_delta([graph], list(forest), [graph.version]) is None

    def test_export_drains_the_journal(self):
        graph = random_graph(6, 25, seed=11)
        forest = fk_forest(2)
        worker = self._enumerated_cache(graph, forest)
        trees = list(forest)
        assert worker.export_delta([graph], trees, [graph.version]) is not None
        # Nothing new learned since the export: the second delta is empty.
        assert worker.export_delta([graph], trees, [graph.version]) is None

    def test_stale_delta_never_poisons_the_parent(self):
        """A delta stamped before a graph mutation must be dropped whole."""
        graph = random_graph(6, 25, seed=13)
        forest = fk_forest(2)
        trees = list(forest)
        worker = self._enumerated_cache(graph, forest)
        delta = worker.export_delta([graph], trees, [graph.version])
        assert delta is not None

        parent = EvaluationCache()
        graph.add(Triple.of(str(EX["zzz"]), str(EX["zzz"]), str(EX["zzz"])))
        assert parent.absorb(delta, [graph], trees) == 0
        assert parent.statistics.delta_entries_stale == len(delta)
        for tree in trees:
            assert parent.tree_solution_list(tree, graph) is None
        # Post-mutation evaluation through the absorbing cache stays exact.
        answers = Engine(forest=forest, cache=parent).solutions(graph, method="natural")
        assert answers == Engine(forest=forest).solutions(graph, method="natural")

    def test_mutated_worker_graph_withholds_the_stamp(self):
        """export_delta(stamp=None) — the session passes None when the
        worker's own graph copy mutated — exports nothing for that graph."""
        graph = random_graph(6, 25, seed=17)
        forest = fk_forest(2)
        worker = self._enumerated_cache(graph, forest)
        assert worker.export_delta([graph], list(forest), [None]) is None

    def test_absorb_respects_the_lru_bound(self):
        graph = random_graph(6, 25, seed=19)
        forest = fk_forest(2)
        trees = list(forest)
        worker = self._enumerated_cache(graph, forest)
        delta = worker.export_delta([graph], trees, [graph.version])
        total_cost = sum(entry[4] for entry in delta.entries)

        bounded = EvaluationCache(max_entries_per_graph=max(2, total_cost // 2))
        bounded.absorb(delta, [graph], trees)
        store = bounded._graphs[id(graph)]
        assert store.total_cost <= max(2, total_cost // 2)
        assert bounded.statistics.evictions > 0
        # Bounded absorption stays answer-preserving.
        answers = Engine(forest=forest, cache=bounded).solutions(graph, method="natural")
        assert answers == Engine(forest=forest).solutions(graph, method="natural")

    def test_bulk_mutation_stamp_rejects_the_delta_whole(self):
        """A single add_all (one version bump for the batch) is enough to
        stamp-out a delta exported before it."""
        graph = random_graph(6, 25, seed=23)
        forest = fk_forest(2)
        trees = list(forest)
        worker = self._enumerated_cache(graph, forest)
        delta = worker.export_delta([graph], trees, [graph.version])
        assert delta is not None

        parent = EvaluationCache()
        version = graph.version
        graph.add_all(
            Triple.of(str(EX[f"bulk{i}"]), str(EX["bulk"]), str(EX["bulk"]))
            for i in range(4)
        )
        assert graph.version == version + 1
        assert parent.absorb(delta, [graph], trees) == 0
        assert parent.statistics.delta_entries_stale == len(delta)
        for tree in trees:
            assert parent.tree_solution_list(tree, graph) is None
        answers = Engine(forest=forest, cache=parent).solutions(graph, method="natural")
        assert answers == Engine(forest=forest).solutions(graph, method="natural")
