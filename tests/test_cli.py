"""Unit tests for the command line interface."""

import pytest

from repro.cli import build_parser, main
from repro.rdf import RDFGraph, Triple
from repro.rdf.io import save_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = RDFGraph(
        [
            Triple.of("http://example.org/alice", "http://example.org/knows", "http://example.org/bob"),
            Triple.of("http://example.org/bob", "http://example.org/email", "http://example.org/bob-mail"),
        ]
    )
    path = tmp_path / "data.nt"
    save_graph(graph, path)
    return str(path)


QUERY = "((?x <http://example.org/knows> ?y) OPT (?y <http://example.org/email> ?e))"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_arguments(self):
        args = build_parser().parse_args(["evaluate", "--graph", "g.nt", "--query", "(?x p ?y)"])
        assert args.command == "evaluate"
        assert args.method == "natural"


class TestEvaluateCommand:
    def test_lists_solutions(self, graph_file, capsys):
        exit_code = main(["evaluate", "--graph", graph_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "# 1 solution(s)" in out
        assert "?x=<http://example.org/alice>" in out

    def test_naive_method(self, graph_file, capsys):
        exit_code = main(["evaluate", "--graph", graph_file, "--query", QUERY, "--method", "naive"])
        assert exit_code == 0
        assert "1 solution" in capsys.readouterr().out


class TestCheckCommand:
    def test_membership_positive(self, graph_file, capsys):
        exit_code = main(
            [
                "check",
                "--graph",
                graph_file,
                "--query",
                QUERY,
                "--binding",
                "x=http://example.org/alice",
                "--binding",
                "y=http://example.org/bob",
                "--binding",
                "e=http://example.org/bob-mail",
            ]
        )
        assert exit_code == 0
        assert "IN" in capsys.readouterr().out

    def test_membership_negative(self, graph_file, capsys):
        exit_code = main(
            [
                "check",
                "--graph",
                graph_file,
                "--query",
                QUERY,
                "--binding",
                "x=http://example.org/alice",
                "--binding",
                "y=http://example.org/bob",
            ]
        )
        assert exit_code == 1
        assert "NOT-IN" in capsys.readouterr().out

    def test_pebble_method_with_width(self, graph_file, capsys):
        exit_code = main(
            [
                "check",
                "--graph",
                graph_file,
                "--query",
                QUERY,
                "--method",
                "pebble",
                "--width",
                "1",
                "--binding",
                "x=http://example.org/alice",
                "--binding",
                "y=http://example.org/bob",
                "--binding",
                "e=http://example.org/bob-mail",
            ]
        )
        assert exit_code == 0

    def test_malformed_binding_reports_error(self, graph_file, capsys):
        exit_code = main(
            ["check", "--graph", graph_file, "--query", QUERY, "--binding", "nonsense"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestBatchCommand:
    @pytest.fixture
    def bindings_file(self, tmp_path):
        path = tmp_path / "bindings.txt"
        path.write_text(
            "# candidate mappings, one per line\n"
            "x=http://example.org/alice y=http://example.org/bob "
            "e=http://example.org/bob-mail\n"
            "# next line is not maximal\n"
            "x=http://example.org/alice y=http://example.org/bob\n"
            "\n"
            "-\n"
        )
        return str(path)

    def test_batch_reports_per_mapping_answers(self, graph_file, bindings_file, capsys):
        exit_code = main(
            ["batch", "--graph", graph_file, "--query", QUERY, "--bindings-file", bindings_file]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        lines = [line for line in out.splitlines() if line]
        assert lines[0].startswith("IN")
        assert lines[1].startswith("NOT-IN")
        assert lines[2].startswith("NOT-IN") and lines[2].endswith("-")  # empty mapping
        assert "# 1 of 3 mapping(s) are solutions" in out

    def test_batch_matches_check(self, graph_file, bindings_file, capsys):
        main(["batch", "--graph", graph_file, "--query", QUERY, "--bindings-file", bindings_file])
        batch_out = capsys.readouterr().out
        check_codes = []
        for bindings in (
            ["x=http://example.org/alice", "y=http://example.org/bob", "e=http://example.org/bob-mail"],
            ["x=http://example.org/alice", "y=http://example.org/bob"],
        ):
            argv = ["check", "--graph", graph_file, "--query", QUERY]
            for b in bindings:
                argv += ["--binding", b]
            check_codes.append(main(argv))
        capsys.readouterr()
        batch_answers = [line.startswith("IN") for line in batch_out.splitlines()[:2]]
        assert batch_answers == [code == 0 for code in check_codes]

    def test_batch_with_method_and_stats(self, graph_file, bindings_file, capsys):
        exit_code = main(
            [
                "batch",
                "--graph",
                graph_file,
                "--query",
                QUERY,
                "--bindings-file",
                bindings_file,
                "--method",
                "pebble",
                "--width",
                "1",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "# plan: pebble(k=1, trusted)" in out
        assert "# cache:" in out

    def test_batch_missing_bindings_file_reports_error(self, graph_file, capsys):
        exit_code = main(
            ["batch", "--graph", graph_file, "--query", QUERY, "--bindings-file", "/nonexistent.txt"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_batch_keeps_fragment_iris_intact(self, tmp_path, capsys):
        # '#' only comments out whole lines; IRIs with fragments must survive.
        graph = RDFGraph(
            [Triple.of("http://example.org/alice", "http://example.org/p", "http://example.org/ns#thing")]
        )
        graph_path = tmp_path / "frag.nt"
        save_graph(graph, graph_path)
        bindings = tmp_path / "frag.txt"
        bindings.write_text("x=http://example.org/alice y=http://example.org/ns#thing\n")
        exit_code = main(
            [
                "batch",
                "--graph",
                str(graph_path),
                "--query",
                "(?x <http://example.org/p> ?y)",
                "--bindings-file",
                str(bindings),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "IN" in out and "y=http://example.org/ns#thing" in out
        assert "# 1 of 1 mapping(s) are solutions" in out

    def test_batch_malformed_line_reports_location(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("x=http://example.org/alice\nnonsense-line\n")
        exit_code = main(
            ["batch", "--graph", graph_file, "--query", QUERY, "--bindings-file", str(bad)]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "bad.txt:2" in err


class TestEvaluateAutoMethod:
    def test_auto_accepted_and_matches_natural(self, graph_file, capsys):
        assert main(["evaluate", "--graph", graph_file, "--query", QUERY, "--method", "auto"]) == 0
        auto_out = capsys.readouterr().out
        assert main(["evaluate", "--graph", graph_file, "--query", QUERY, "--method", "natural"]) == 0
        assert auto_out == capsys.readouterr().out
        assert "# 1 solution(s)" in auto_out


class TestExplainCommand:
    def test_auto_without_bound_is_natural(self, capsys):
        exit_code = main(["explain", "--query", QUERY])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "chosen strategy  : natural" in out
        assert "rationale" in out

    def test_width_bound_chooses_pebble_trusted(self, capsys):
        exit_code = main(["explain", "--query", QUERY, "--width-bound", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "chosen strategy  : pebble" in out
        assert "k = 1" in out
        assert "trusted" in out

    def test_compute_width_certifies(self, capsys):
        exit_code = main(["explain", "--query", QUERY, "--compute-width"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "chosen strategy  : pebble" in out
        assert "certified" in out

    def test_explicit_method(self, capsys):
        exit_code = main(["explain", "--query", QUERY, "--method", "naive"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "chosen strategy  : naive" in out

    def test_cost_requires_graph(self, capsys):
        exit_code = main(["explain", "--query", QUERY, "--cost"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "--graph" in err

    def test_graph_requires_cost(self, graph_file, capsys):
        exit_code = main(["explain", "--query", QUERY, "--graph", graph_file])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "--cost" in err

    def test_cost_snapshot(self, graph_file, capsys):
        """Snapshot of `explain --cost`: the full cost-annotated plan."""
        exit_code = main(["explain", "--query", QUERY, "--graph", graph_file, "--cost"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out == (
            "query            : ((?x http://example.org/knows ?y) OPT "
            "(?y http://example.org/email ?e))\n"
            "requested method : auto\n"
            "chosen strategy  : natural — exact wdPF evaluation (Lemma 1) with "
            "full homomorphism child tests\n"
            "width bound      : n/a (width-free strategy)\n"
            "cost estimate    : natural ~8.0e+00 · naive ~1.6e+01 (membership)\n"
            "cost inputs      : |G| = 2 triples, |dom(G)| = 5, 2 node(s), 1 OPT child(ren)\n"
            "rationale        : the cost model compared natural ~8.0e+00 · "
            "naive ~1.6e+01 for this graph and the natural strategy is the "
            "cheapest admissible choice (it is exact for every input)\n"
        )

    def test_cost_with_width_bound_admits_pebble(self, graph_file, capsys):
        exit_code = main(
            ["explain", "--query", QUERY, "--graph", graph_file, "--cost", "--width-bound", "1"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "pebble ~" in out
        assert "cost inputs      : |G| = 2 triples" in out


class TestBatchStream:
    @pytest.fixture
    def bindings_file(self, tmp_path):
        path = tmp_path / "stream-bindings.txt"
        path.write_text(
            "x=http://example.org/alice y=http://example.org/bob e=http://example.org/bob-mail\n"
            "x=http://example.org/alice y=http://example.org/bob\n"
            "-\n"
        )
        return str(path)

    def test_stream_output_matches_batched(self, graph_file, bindings_file, capsys):
        argv = ["batch", "--graph", graph_file, "--query", QUERY, "--bindings-file", bindings_file]
        assert main(argv) == 0
        batched = capsys.readouterr().out
        assert main(argv + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        assert streamed == batched

    def test_stream_with_processes_matches_batched(self, graph_file, bindings_file, capsys):
        """--stream now combines with --processes: verdicts stream back from
        the worker pool in input order, identical to the batched output."""
        argv = ["batch", "--graph", graph_file, "--query", QUERY, "--bindings-file", bindings_file]
        assert main(argv) == 0
        batched = capsys.readouterr().out
        assert main(argv + ["--stream", "--processes", "2"]) == 0
        streamed = capsys.readouterr().out
        assert streamed == batched

    def test_stream_rejects_invalid_processes(self, graph_file, bindings_file, capsys):
        exit_code = main(
            [
                "batch", "--graph", graph_file, "--query", QUERY,
                "--bindings-file", bindings_file, "--stream", "--processes", "0",
            ]
        )
        assert exit_code == 2
        assert "processes" in capsys.readouterr().err

    def test_stats_reports_worker_mode(self, graph_file, bindings_file, capsys):
        argv = [
            "batch", "--graph", graph_file, "--query", QUERY,
            "--bindings-file", bindings_file, "--stats",
        ]
        assert main(argv) == 0
        assert "# workers: serial" in capsys.readouterr().out
        assert main(argv + ["--processes", "2"]) == 0
        out = capsys.readouterr().out
        assert "# workers: " in out
        assert "# workers: serial" not in out


class TestClassifyAndValidate:
    def test_classify_reports_widths(self, capsys):
        exit_code = main(["classify", "--query", QUERY])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "domination width : 1" in out
        assert "PTIME" in out

    def test_validate_well_designed(self, capsys):
        exit_code = main(["validate", "--query", QUERY])
        assert exit_code == 0
        assert "well-designed" in capsys.readouterr().out

    def test_validate_detects_violation(self, capsys):
        bad = "(((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?z) AND (?z r ?w)))"
        exit_code = main(["validate", "--query", bad])
        assert exit_code == 1
        assert "NOT well-designed" in capsys.readouterr().out
