"""Unit tests for the command line interface."""

import pytest

from repro.cli import build_parser, main
from repro.rdf import RDFGraph, Triple
from repro.rdf.io import save_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = RDFGraph(
        [
            Triple.of("http://example.org/alice", "http://example.org/knows", "http://example.org/bob"),
            Triple.of("http://example.org/bob", "http://example.org/email", "http://example.org/bob-mail"),
        ]
    )
    path = tmp_path / "data.nt"
    save_graph(graph, path)
    return str(path)


QUERY = "((?x <http://example.org/knows> ?y) OPT (?y <http://example.org/email> ?e))"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_arguments(self):
        args = build_parser().parse_args(["evaluate", "--graph", "g.nt", "--query", "(?x p ?y)"])
        assert args.command == "evaluate"
        assert args.method == "natural"


class TestEvaluateCommand:
    def test_lists_solutions(self, graph_file, capsys):
        exit_code = main(["evaluate", "--graph", graph_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "# 1 solution(s)" in out
        assert "?x=<http://example.org/alice>" in out

    def test_naive_method(self, graph_file, capsys):
        exit_code = main(["evaluate", "--graph", graph_file, "--query", QUERY, "--method", "naive"])
        assert exit_code == 0
        assert "1 solution" in capsys.readouterr().out


class TestCheckCommand:
    def test_membership_positive(self, graph_file, capsys):
        exit_code = main(
            [
                "check",
                "--graph",
                graph_file,
                "--query",
                QUERY,
                "--binding",
                "x=http://example.org/alice",
                "--binding",
                "y=http://example.org/bob",
                "--binding",
                "e=http://example.org/bob-mail",
            ]
        )
        assert exit_code == 0
        assert "IN" in capsys.readouterr().out

    def test_membership_negative(self, graph_file, capsys):
        exit_code = main(
            [
                "check",
                "--graph",
                graph_file,
                "--query",
                QUERY,
                "--binding",
                "x=http://example.org/alice",
                "--binding",
                "y=http://example.org/bob",
            ]
        )
        assert exit_code == 1
        assert "NOT-IN" in capsys.readouterr().out

    def test_pebble_method_with_width(self, graph_file, capsys):
        exit_code = main(
            [
                "check",
                "--graph",
                graph_file,
                "--query",
                QUERY,
                "--method",
                "pebble",
                "--width",
                "1",
                "--binding",
                "x=http://example.org/alice",
                "--binding",
                "y=http://example.org/bob",
                "--binding",
                "e=http://example.org/bob-mail",
            ]
        )
        assert exit_code == 0

    def test_malformed_binding_reports_error(self, graph_file, capsys):
        exit_code = main(
            ["check", "--graph", graph_file, "--query", QUERY, "--binding", "nonsense"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestClassifyAndValidate:
    def test_classify_reports_widths(self, capsys):
        exit_code = main(["classify", "--query", QUERY])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "domination width : 1" in out
        assert "PTIME" in out

    def test_validate_well_designed(self, capsys):
        exit_code = main(["validate", "--query", QUERY])
        assert exit_code == 0
        assert "well-designed" in capsys.readouterr().out

    def test_validate_detects_violation(self, capsys):
        bad = "(((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?z) AND (?z r ?w)))"
        exit_code = main(["validate", "--query", bad])
        assert exit_code == 1
        assert "NOT well-designed" in capsys.readouterr().out
