"""Documentation stays true: links resolve, python snippets execute.

This drives the same checks as ``scripts/check_docs.py`` (the CI doc-check
step), so a broken doc link or a rotted README/docs code example fails the
tier-1 suite too.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_relative_doc_links_resolve():
    assert check_docs.check_links(ROOT) == []


def test_doc_python_snippets_execute():
    executed, skipped, errors = check_docs.run_snippets(ROOT)
    assert errors == []
    # The docs must keep at least a few *runnable* examples: if every block
    # grows a `...` placeholder this assertion forces one back.
    assert executed >= 3, f"only {executed} runnable snippet(s) ({skipped} skipped)"


def test_analysis_rule_table_matches_registry():
    """docs/analysis.md and the linter's rule registry agree both ways.

    Every rule id the linter can emit has a row in the invariants table
    (first column, backticked), and every documented rule id exists — so
    rule docs cannot drift the way the PR 4 size-accounting claim did.
    """
    import re

    from repro.analysis import rule_registry

    table_ids = set(
        re.findall(
            r"^\|\s*`(RP-[A-Z]+)`",
            (ROOT / "docs" / "analysis.md").read_text(encoding="utf-8"),
            flags=re.MULTILINE,
        )
    )
    registry_ids = set(rule_registry())
    assert table_ids == registry_ids, (
        f"undocumented rules: {sorted(registry_ids - table_ids)}; "
        f"documented but unregistered: {sorted(table_ids - registry_ids)}"
    )


def test_locking_discipline_section_matches_registries():
    """The architecture page's locking section and the lint registries agree.

    Every ``Class._attr`` token in the "Locking discipline" section must
    come from GUARDED_BY / LOCK_ORDER, and every registry entry must be
    documented there — the sanctioned lock order and the guarded-by map
    cannot drift from what the linter actually enforces.
    """
    import re

    from repro.analysis.rules.guards import GUARDED_BY
    from repro.analysis.rules.lockorder import LOCK_ORDER

    text = (ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    match = re.search(r"### Locking discipline\n(.*?)(?:\n### |\Z)", text, re.DOTALL)
    assert match, "docs/architecture.md lost its 'Locking discipline' section"
    doc_tokens = set(re.findall(r"`([A-Za-z]\w*\._\w+)`", match.group(1)))
    expected = set()
    for _suffix, cls, attr, lock_attr in GUARDED_BY:
        expected.add(f"{cls}.{attr}")
        expected.add(f"{cls}.{lock_attr}")
    for outer, inner in LOCK_ORDER:
        expected.update((outer, inner))
    assert doc_tokens == expected, (
        f"documented but not in a registry: {sorted(doc_tokens - expected)}; "
        f"in a registry but undocumented: {sorted(expected - doc_tokens)}"
    )
