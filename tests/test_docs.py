"""Documentation stays true: links resolve, python snippets execute.

This drives the same checks as ``scripts/check_docs.py`` (the CI doc-check
step), so a broken doc link or a rotted README/docs code example fails the
tier-1 suite too.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_relative_doc_links_resolve():
    assert check_docs.check_links(ROOT) == []


def test_doc_python_snippets_execute():
    executed, skipped, errors = check_docs.run_snippets(ROOT)
    assert errors == []
    # The docs must keep at least a few *runnable* examples: if every block
    # grows a `...` placeholder this assertion forces one back.
    assert executed >= 3, f"only {executed} runnable snippet(s) ({skipped} skipped)"


def test_analysis_rule_table_matches_registry():
    """docs/analysis.md and the linter's rule registry agree both ways.

    Every rule id the linter can emit has a row in the invariants table
    (first column, backticked), and every documented rule id exists — so
    rule docs cannot drift the way the PR 4 size-accounting claim did.
    """
    import re

    from repro.analysis import rule_registry

    table_ids = set(
        re.findall(
            r"^\|\s*`(RP-[A-Z]+)`",
            (ROOT / "docs" / "analysis.md").read_text(encoding="utf-8"),
            flags=re.MULTILINE,
        )
    )
    registry_ids = set(rule_registry())
    assert table_ids == registry_ids, (
        f"undocumented rules: {sorted(registry_ids - table_ids)}; "
        f"documented but unregistered: {sorted(table_ids - registry_ids)}"
    )
