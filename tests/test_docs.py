"""Documentation stays true: links resolve, python snippets execute.

This drives the same checks as ``scripts/check_docs.py`` (the CI doc-check
step), so a broken doc link or a rotted README/docs code example fails the
tier-1 suite too.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_relative_doc_links_resolve():
    assert check_docs.check_links(ROOT) == []


def test_doc_python_snippets_execute():
    executed, skipped, errors = check_docs.run_snippets(ROOT)
    assert errors == []
    # The docs must keep at least a few *runnable* examples: if every block
    # grows a `...` placeholder this assertion forces one back.
    assert executed >= 3, f"only {executed} runnable snippet(s) ({skipped} skipped)"
