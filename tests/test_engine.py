"""Unit tests for the unified evaluation Engine facade."""

import pytest

from repro.evaluation import Engine, EvaluationCache, EvaluationStatistics
from repro.exceptions import EvaluationError
from repro.patterns import WDPatternForest
from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable
from repro.sparql import Mapping, parse_pattern
from repro.workloads.families import fk_data_graph, fk_forest, tprime_tree, tprime_data_graph


class TestConstruction:
    def test_requires_pattern_or_forest(self):
        with pytest.raises(EvaluationError):
            Engine()

    def test_from_pattern(self):
        engine = Engine(parse_pattern("((?x p ?y) OPT (?y q ?z))"))
        assert len(engine.forest) == 1
        assert engine.pattern is not None

    def test_from_forest(self):
        engine = Engine(forest=fk_forest(2))
        assert engine.pattern is not None
        assert len(engine.forest) == 3

    def test_invalid_width_bound(self):
        with pytest.raises(EvaluationError):
            Engine(parse_pattern("(?x p ?y)"), width_bound=0)

    def test_domination_width_cached(self):
        engine = Engine(forest=fk_forest(2))
        assert engine.domination_width() == 1
        assert engine.domination_width() == 1  # cached path

    def test_width_bound_property(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        assert engine.width_bound == 1


class TestMembershipMethods:
    @pytest.fixture
    def setting(self):
        forest = fk_forest(2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=1)
        engine = Engine(forest=forest, width_bound=1)
        solutions = engine.solutions(graph, method="natural")
        return engine, graph, solutions

    def test_methods_agree_on_solutions(self, setting):
        engine, graph, solutions = setting
        for mu in sorted(solutions, key=repr)[:4]:
            answers = engine.contains_all_methods(graph, mu)
            assert answers == {"naive": True, "natural": True, "pebble": True}

    def test_auto_uses_pebble_with_bound(self, setting):
        engine, graph, solutions = setting
        for mu in sorted(solutions, key=repr)[:2]:
            assert engine.contains(graph, mu, method="auto")

    def test_auto_without_bound_falls_back_to_natural(self):
        engine = Engine(forest=fk_forest(2))
        graph = fk_data_graph(5, 20, seed=2)
        solutions = engine.solutions(graph, method="natural")
        for mu in sorted(solutions, key=repr)[:2]:
            assert engine.contains(graph, mu, method="auto")

    def test_unknown_method_rejected(self, setting):
        engine, graph, _ = setting
        with pytest.raises(EvaluationError):
            engine.contains(graph, Mapping.EMPTY, method="quantum")

    def test_explicit_width_override(self, setting):
        engine, graph, solutions = setting
        for mu in sorted(solutions, key=repr)[:2]:
            assert engine.contains(graph, mu, method="pebble", width=2)

    def test_non_solution_rejected_by_all_methods(self, setting):
        engine, graph, _ = setting
        mu = Mapping({Variable("x"): EX.term("nowhere"), Variable("y"): EX.term("nowhere2")})
        assert engine.contains_all_methods(graph, mu) == {
            "naive": False,
            "natural": False,
            "pebble": False,
        }

    def test_contains_all_methods_threads_statistics(self, setting):
        engine, graph, solutions = setting
        mu = sorted(solutions, key=repr)[0]
        statistics = EvaluationStatistics()
        answers = engine.contains_all_methods(graph, mu, statistics=statistics)
        assert answers == {"naive": True, "natural": True, "pebble": True}
        # The counters must match two explicit single-method runs.
        expected = EvaluationStatistics()
        engine.contains(graph, mu, method="natural", statistics=expected)
        engine.contains(graph, mu, method="pebble", statistics=expected)
        assert statistics.trees_visited == expected.trees_visited
        assert statistics.subtree_found == expected.subtree_found
        assert statistics.child_checks == expected.child_checks
        assert statistics.trees_visited > 0

    def test_engine_with_cache_matches_plain(self, setting):
        engine, graph, solutions = setting
        cached = Engine(forest=engine.forest, width_bound=1, cache=EvaluationCache())
        for mu in sorted(solutions, key=repr)[:4]:
            assert cached.contains_all_methods(graph, mu) == engine.contains_all_methods(graph, mu)
        assert cached.cache.statistics.hits + cached.cache.statistics.misses > 0


class TestSolutionEnumeration:
    def test_naive_and_natural_agree(self):
        engine = Engine(forest=WDPatternForest([tprime_tree(2)]))
        graph = tprime_data_graph(6, 20, seed=4)
        assert engine.solutions(graph, method="naive") == engine.solutions(graph, method="natural")

    def test_unknown_enumeration_method(self):
        engine = Engine(parse_pattern("(?x p ?y)"))
        with pytest.raises(EvaluationError):
            engine.solutions(RDFGraph(), method="pebble")

    def test_quickstart_example_from_docstring(self):
        graph = RDFGraph([Triple.of("alice", "knows", "bob")])
        engine = Engine(parse_pattern("((?x knows ?y) OPT (?y email ?e))"))
        solutions = engine.solutions(graph)
        assert len(solutions) == 1
        only = next(iter(solutions))
        assert only.domain() == {Variable("x"), Variable("y")}
