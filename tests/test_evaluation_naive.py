"""Unit tests for the naive compositional evaluator (the reference semantics)."""

import pytest

from repro.evaluation import evaluate_pattern, pattern_contains
from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable
from repro.sparql import Mapping, parse_pattern


@pytest.fixture
def people_graph() -> RDFGraph:
    """alice knows bob and carol; bob has an email; carol does not."""
    return RDFGraph(
        [
            Triple.of(EX.alice, EX.knows, EX.bob),
            Triple.of(EX.alice, EX.knows, EX.carol),
            Triple.of(EX.bob, EX.email, EX.bob_mail),
        ]
    )


def knows_pattern(text: str):
    return parse_pattern(text.replace("knows", EX.knows.value).replace("email", EX.email.value))


class TestTriplePatterns:
    def test_single_triple(self, people_graph):
        result = evaluate_pattern(knows_pattern("(?x knows ?y)"), people_graph)
        assert len(result) == 2

    def test_ground_triple_present(self, people_graph):
        pattern = parse_pattern(f"({EX.alice.value} {EX.knows.value} {EX.bob.value})")
        assert evaluate_pattern(pattern, people_graph) == {Mapping.EMPTY}

    def test_ground_triple_absent(self, people_graph):
        pattern = parse_pattern(f"({EX.bob.value} {EX.knows.value} {EX.alice.value})")
        assert evaluate_pattern(pattern, people_graph) == set()


class TestOperators:
    def test_and_joins_compatible_mappings(self, people_graph):
        result = evaluate_pattern(knows_pattern("((?x knows ?y) AND (?y email ?e))"), people_graph)
        assert len(result) == 1
        mapping = next(iter(result))
        assert mapping[Variable("y")] == EX.bob

    def test_opt_keeps_unmatched_left_solutions(self, people_graph):
        result = evaluate_pattern(knows_pattern("((?x knows ?y) OPT (?y email ?e))"), people_graph)
        assert len(result) == 2
        domains = {frozenset(v.name for v in mapping.domain()) for mapping in result}
        assert frozenset({"x", "y", "e"}) in domains  # bob extended
        assert frozenset({"x", "y"}) in domains  # carol not extended

    def test_union_combines(self, people_graph):
        result = evaluate_pattern(
            knows_pattern("(?x knows ?y) UNION (?x email ?y)"), people_graph
        )
        assert len(result) == 3

    def test_opt_with_unsatisfiable_right(self, people_graph):
        result = evaluate_pattern(
            knows_pattern("((?x knows ?y) OPT (?y knows ?z))"), people_graph
        )
        # neither bob nor carol knows anyone: all solutions stay unextended
        assert all(Variable("z") not in mapping for mapping in result)

    def test_nested_opt_example1(self, people_graph):
        from repro.workloads.families import example1_patterns

        p1, _ = example1_patterns()
        # over an unrelated graph, the pattern has no solutions (predicate p absent)
        assert evaluate_pattern(p1, people_graph) == set()


class TestMembership:
    def test_pattern_contains_positive(self, people_graph):
        pattern = knows_pattern("((?x knows ?y) OPT (?y email ?e))")
        mu = Mapping({Variable("x"): EX.alice, Variable("y"): EX.carol})
        assert pattern_contains(pattern, people_graph, mu)

    def test_pattern_contains_negative_not_maximal(self, people_graph):
        """A mapping that could be extended (bob has an email) is not a solution."""
        pattern = knows_pattern("((?x knows ?y) OPT (?y email ?e))")
        mu = Mapping({Variable("x"): EX.alice, Variable("y"): EX.bob})
        assert not pattern_contains(pattern, people_graph, mu)

    def test_pattern_contains_wrong_value(self, people_graph):
        pattern = knows_pattern("(?x knows ?y)")
        mu = Mapping({Variable("x"): EX.bob, Variable("y"): EX.alice})
        assert not pattern_contains(pattern, people_graph, mu)
