"""Unit tests for the Theorem 1 evaluation algorithm (pebble relaxation)."""

import itertools

import pytest

from repro.evaluation import (
    evaluate_pattern,
    forest_contains,
    forest_contains_pebble,
    tree_contains_pebble,
)
from repro.patterns import WDPatternForest, wdpf
from repro.sparql import Mapping
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable
from repro.workloads.families import (
    fk_data_graph,
    fk_forest,
    fk_pattern,
    hard_clique_tree,
    clique_query_data_graph,
    tprime_data_graph,
    tprime_pattern,
)
from repro.workloads.clique_instances import random_host_graph


class TestSoundness:
    """The algorithm is sound on every input: accept implies membership."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("width", [1, 2])
    def test_accepts_only_solutions_on_fk(self, k, width):
        pattern = fk_pattern(k)
        forest = wdpf(pattern)
        graph = fk_data_graph(5, 25, clique_size=k, seed=k)
        truth = evaluate_pattern(pattern, graph)
        domains = {frozenset(mu.domain()) for mu in truth}
        nodes = sorted(graph.domain(), key=str)[:3]
        for domain in list(domains)[:2]:
            variables = sorted(domain, key=lambda v: v.name)
            for values in itertools.islice(itertools.product(nodes, repeat=len(variables)), 8):
                mu = Mapping(dict(zip(variables, values)))
                if forest_contains_pebble(forest, graph, mu, width):
                    assert mu in truth

    def test_soundness_on_unbounded_width_family(self):
        """Even on the hard family Q_k (where completeness may fail for small k),
        the pebble algorithm never accepts a non-solution."""
        tree = hard_clique_tree(3)
        forest = WDPatternForest([tree])
        host = random_host_graph(6, 0.6, seed=1)
        graph = clique_query_data_graph(host)
        truth_engine = lambda mu: forest_contains(forest, graph, mu)
        anchors = [t for t in graph.matches(next(iter(forest[0].pat(0))))]
        for triple in anchors[:3]:
            mu = Mapping({Variable("x"): triple.subject, Variable("y"): triple.object})
            if forest_contains_pebble(forest, graph, mu, 1):
                assert truth_engine(mu)


class TestCompleteness:
    """Exactness when the width parameter bounds the domination width (Theorem 1)."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_exact_on_fk_with_width_one(self, k):
        forest = fk_forest(k)
        graph = fk_data_graph(6, 30, clique_size=k, seed=k)
        truth = {
            mu
            for mu in evaluate_pattern(fk_pattern(k), graph)
        }
        # check a sample of solutions and perturbed non-solutions
        for mu in sorted(truth, key=repr)[:5]:
            assert forest_contains_pebble(forest, graph, mu, 1)
            assert forest_contains(forest, graph, mu)

    @pytest.mark.parametrize("k", [2, 3])
    def test_exact_on_tprime_with_width_one(self, k):
        pattern = tprime_pattern(k)
        forest = wdpf(pattern)
        graph = tprime_data_graph(8, 30, seed=k)
        truth = evaluate_pattern(pattern, graph)
        nodes = sorted(graph.domain(), key=str)[:4]
        for value in nodes:
            mu = Mapping({Variable("y"): value})
            expected = mu in truth
            assert forest_contains_pebble(forest, graph, mu, 1) == expected

    def test_larger_width_parameter_recovers_exactness_on_hard_family(self):
        """On Q_k, running the pebble algorithm with width k-1 (its true
        domination width) is exact."""
        k = 3
        tree = hard_clique_tree(k)
        forest = WDPatternForest([tree])
        host = random_host_graph(5, 0.7, seed=2)
        graph = clique_query_data_graph(host)
        anchor = EX.term("anchor")
        targets = [t.object for t in graph.matches(next(iter(tree.pat(0))))]
        for target in targets:
            mu = Mapping({Variable("x"): anchor, Variable("y"): target})
            exact = forest_contains(forest, graph, mu)
            assert forest_contains_pebble(forest, graph, mu, k - 1) == exact


class TestParameterValidation:
    def test_width_must_be_positive(self):
        forest = fk_forest(2)
        graph = fk_data_graph(4, 10, seed=0)
        with pytest.raises(ValueError):
            forest_contains_pebble(forest, graph, Mapping.EMPTY, 0)

    def test_tree_level_entry_point(self):
        forest = fk_forest(2)
        graph = fk_data_graph(4, 16, clique_size=2, seed=3)
        mu_candidates = [
            Mapping({Variable("x"): t.subject, Variable("y"): t.object})
            for t in list(graph.matches(next(iter(forest[0].pat(0)))))[:2]
        ]
        for mu in mu_candidates:
            assert tree_contains_pebble(forest[0], graph, mu, 1) in (True, False)
