"""Unit tests for the natural wdPF evaluation algorithm (Lemma 1) and the
Lemma 1 based solution enumeration."""

import itertools

import pytest

from repro.evaluation import (
    EvaluationStatistics,
    evaluate_pattern,
    find_mu_subtree,
    forest_contains,
    forest_solutions,
    tree_contains,
    tree_solutions,
)
from repro.patterns import wdpf
from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable
from repro.sparql import Mapping
from repro.workloads.families import (
    P_PRED,
    Q_PRED,
    R_PRED,
    fk_data_graph,
    fk_forest,
    fk_pattern,
    tprime_data_graph,
    tprime_pattern,
)


@pytest.fixture
def fk_graph() -> RDFGraph:
    """A hand-crafted graph for F_2: a p-edge, a q-edge into its subject and an
    r-clique of size 2 hanging off the p-target."""
    return RDFGraph(
        [
            Triple.of(EX.a, P_PRED, EX.b),
            Triple.of(EX.c, Q_PRED, EX.a),
            Triple.of(EX.b, R_PRED, EX.m1),
            Triple.of(EX.m1, R_PRED, EX.m2),
        ]
    )


class TestFindMuSubtree:
    def test_finds_root_only(self, fk_graph):
        tree = fk_forest(2)[0]
        mu = Mapping({Variable("x"): EX.a, Variable("y"): EX.b})
        subtree = find_mu_subtree(tree, fk_graph, mu)
        assert subtree is not None and subtree.nodes == {0}

    def test_extends_to_satisfied_child(self, fk_graph):
        tree = fk_forest(2)[0]
        mu = Mapping({Variable("x"): EX.a, Variable("y"): EX.b, Variable("z"): EX.c})
        subtree = find_mu_subtree(tree, fk_graph, mu)
        assert subtree is not None and subtree.nodes == {0, 1}

    def test_none_when_root_unsatisfied(self, fk_graph):
        tree = fk_forest(2)[0]
        mu = Mapping({Variable("x"): EX.b, Variable("y"): EX.a})
        assert find_mu_subtree(tree, fk_graph, mu) is None

    def test_none_when_domain_mismatch(self, fk_graph):
        tree = fk_forest(2)[0]
        # domain includes a variable the tree cannot account for
        mu = Mapping({Variable("x"): EX.a, Variable("y"): EX.b, Variable("nope"): EX.c})
        assert find_mu_subtree(tree, fk_graph, mu) is None


class TestTreeMembership:
    def test_solution_without_extension(self, fk_graph):
        """{x->a, y->b, z->c} is a solution of T1 iff the K_k child cannot extend."""
        tree = fk_forest(3)[0]  # K_3 child cannot be satisfied by the 2-clique
        mu = Mapping({Variable("x"): EX.a, Variable("y"): EX.b, Variable("z"): EX.c})
        assert tree_contains(tree, fk_graph, mu)

    def test_not_solution_when_child_extends(self, fk_graph):
        tree = fk_forest(2)[0]  # K_2 child IS satisfied (m1 -r-> m2)
        mu = Mapping({Variable("x"): EX.a, Variable("y"): EX.b, Variable("z"): EX.c})
        assert not tree_contains(tree, fk_graph, mu)

    def test_statistics_counters(self, fk_graph):
        stats = EvaluationStatistics()
        forest = fk_forest(2)
        mu = Mapping({Variable("x"): EX.a, Variable("y"): EX.b})
        forest_contains(forest, fk_graph, mu, stats)
        assert stats.trees_visited >= 1
        assert "EvaluationStatistics" in repr(stats)


class TestAgainstNaiveSemantics:
    """The wdPF algorithms agree with the compositional semantics."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fk_solution_sets(self, k, seed):
        pattern = fk_pattern(k)
        forest = wdpf(pattern)
        graph = fk_data_graph(5, 25, clique_size=k, seed=seed)
        assert forest_solutions(forest, graph) == evaluate_pattern(pattern, graph)

    @pytest.mark.parametrize("k", [2, 3])
    def test_tprime_solution_sets(self, k):
        pattern = tprime_pattern(k)
        forest = wdpf(pattern)
        graph = tprime_data_graph(6, 20, seed=k)
        assert forest_solutions(forest, graph) == evaluate_pattern(pattern, graph)

    @pytest.mark.parametrize("k", [2, 3])
    def test_fk_membership_exhaustive_over_small_domain(self, k):
        pattern = fk_pattern(k)
        forest = wdpf(pattern)
        graph = fk_data_graph(4, 18, clique_size=k, seed=7)
        truth = evaluate_pattern(pattern, graph)
        domains = {frozenset(mu.domain()) for mu in truth}
        nodes = sorted(graph.domain(), key=str)[:3]
        for domain in list(domains)[:2]:
            variables = sorted(domain, key=lambda v: v.name)
            for values in itertools.islice(itertools.product(nodes, repeat=len(variables)), 10):
                mu = Mapping(dict(zip(variables, values)))
                assert forest_contains(forest, graph, mu) == (mu in truth)

    def test_tree_solutions_respects_maximality(self, fk_graph):
        tree = fk_forest(2)[0]
        solutions = tree_solutions(tree, fk_graph)
        # the mapping {x->a, y->b, z->c} is NOT maximal (the K_2 child extends),
        # so the only solutions over {x,y,z,...} include the clique variables.
        assert Mapping(
            {Variable("x"): EX.a, Variable("y"): EX.b, Variable("z"): EX.c}
        ) not in solutions
        assert any(Variable("o1") in mu for mu in solutions)
