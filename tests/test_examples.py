"""Smoke tests: the example scripts run end to end and print sensible output.

The examples are part of the public deliverable, so regressions in them
should fail the test suite, not only be discovered by readers.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"examples.{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_reports_widths(self, capsys):
        module = _load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "solutions" in out
        assert "domination width" in out
        assert "dw(P) = 1" in out


class TestSocialNetwork:
    def test_runs_on_a_small_network(self, capsys):
        module = _load_example("social_network.py")
        module.main(12)
        out = capsys.readouterr().out
        assert "friends+email" in out
        assert "agreement: True" in out


class TestTractabilityAnalysis:
    def test_reports_both_sides_of_the_frontier(self, capsys):
        module = _load_example("tractability_analysis.py")
        module.main()
        out = capsys.readouterr().out
        assert "BOUNDED" in out
        assert "UNBOUNDED" in out


class TestPaperFigures:
    def test_regenerates_figures_for_k3(self, capsys):
        module = _load_example("paper_figures.py")
        module.main(3)
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out and "Figure 3" in out
        assert "dw(F_3) = 1" in out


class TestCliqueReductionDemo:
    def test_demo_building_blocks_run(self, capsys):
        """Run a reduced version of the demo (k = 2 only) to keep the suite fast."""
        module = _load_example("clique_reduction_demo.py")
        import networkx as nx

        module.describe_instance(nx.complete_graph(3), 2)
        out = capsys.readouterr().out
        assert "correct: True" in out
