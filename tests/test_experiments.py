"""Unit tests for the experiment harness (small-scale runs of E1-E9)."""

import pytest

from repro.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    experiment_e1_figure1_cores,
    experiment_e2_figure2_widths,
    experiment_e3_figure3_domination,
    experiment_e5_unionfree_family,
    experiment_e6_prop5_dw_equals_bw,
    experiment_e8_local_vs_domination,
    run_experiment,
    time_callable,
)


class TestHarness:
    def test_registry_contains_all_experiments(self):
        assert {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} <= set(EXPERIMENT_REGISTRY)

    def test_run_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("E42")

    def test_result_table_rendering(self):
        result = ExperimentResult(
            experiment_id="X", title="demo", claim="none", columns=["a", "b"]
        )
        result.add_row(a=1, b=2.5)
        result.add_note("a note")
        text = result.to_text()
        assert "demo" in text and "2.5000" in text and "a note" in text

    def test_time_callable_returns_result(self):
        elapsed, value = time_callable(lambda: 41 + 1, repeat=2)
        assert value == 42 and elapsed >= 0.0


class TestExperimentsSmallScale:
    def test_e1_matches_paper(self):
        result = experiment_e1_figure1_cores(ks=(2, 3))
        for row in result.rows:
            assert row["ctw(S,X)"] == row["expected"]
            assert row["ctw(S',X)"] == 1
            assert row["tw(S',X)"] == row["expected tw"]

    def test_e2_matches_paper(self):
        result = experiment_e2_figure2_widths(ks=(2, 3))
        for row in result.rows:
            assert row["dw(F_k)"] == 1
            assert row["local width"] == row["expected local"]

    def test_e3_domination_holds(self):
        result = experiment_e3_figure3_domination(ks=(2, 3))
        assert all(row["1-dominated"] for row in result.rows)

    def test_e5_union_free_family(self):
        result = experiment_e5_unionfree_family(ks=(2, 3), graph_size=8)
        for row in result.rows:
            assert row["bw"] == 1 and row["dw (forest)"] == 1 and row["agreement"]

    def test_e6_proposition5(self):
        result = experiment_e6_prop5_dw_equals_bw(num_patterns=4, num_nodes=3, seed=1)
        assert all(row["equal"] for row in result.rows)

    def test_e8_gap_table(self):
        result = experiment_e8_local_vs_domination(ks=(2, 3))
        fk_rows = [row for row in result.rows if row["family"] == "F_k"]
        assert all(row["dw / bw"] == 1 for row in fk_rows)
        assert any(row["local width"] > 1 for row in fk_rows)

    def test_e4_small_run_agrees(self):
        result = run_experiment("E4", ks=(2,), graph_sizes=(8,), triples_per_node=4)
        assert all(row["agreement"] for row in result.rows)

    def test_e7_small_run_correct(self):
        result = run_experiment("E7", ks=(2,), host_sizes=(5,))
        assert all(row["correct"] for row in result.rows)

    def test_e9_produces_rows_for_both_families(self):
        result = run_experiment("E9", bounded_ks=(2,), unbounded_ks=(2,), graph_size=8)
        families = {row["family"] for row in result.rows}
        assert len(families) == 2
