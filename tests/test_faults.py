"""Fault-injection and budget tests: the resilience layer end to end.

These tests drive the recovery paths of :mod:`repro.evaluation.session`
with *real* faults — SIGKILLed pool workers, stalled result queues,
tampered cache deltas, swallowed terminal events — installed through the
test-only ``Session(faults=FaultPlan(...))`` hook, plus the wall-clock /
step budgets of :mod:`repro.evaluation.budget` on every entry point.

The invariant under test everywhere: **answers are bitwise identical to a
serial run**, no matter what the pool does underneath.
"""

import multiprocessing
import pickle
import time

import pytest

from repro.evaluation import (
    Budget,
    DeadlineExceeded,
    Engine,
    EvaluationStatistics,
    FaultInjected,
    FaultPlan,
    Session,
    TimeoutReport,
    WorkerCrashError,
)
from repro.exceptions import EvaluationError
from repro.rdf import RDFGraph, Triple
from repro.sparql import Mapping, parse_pattern

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault-injection suite needs a POSIX multiprocessing platform",
)

#: Short grace so degradation tests settle quickly; long enough that a
#: healthy-but-slow worker is never cut off on a loaded CI box.
GRACE = 0.8


def line_graph(n=20):
    """Two-hop chains a{i} -> b{i} -> c{i}: every test pattern has answers."""
    return RDFGraph(
        [Triple.of(f"a{i}", "p", f"b{i}") for i in range(n)]
        + [Triple.of(f"b{i}", "p", f"c{i}") for i in range(n)]
    )


def dense_graph(n=12):
    """Every node points at every node: k-chains explode combinatorially."""
    return RDFGraph(
        [Triple.of(f"n{i}", "p", f"n{j}") for i in range(n) for j in range(n)]
    )


def three_patterns():
    """Three structurally distinct patterns (three distinct cells)."""
    return [
        parse_pattern("(?x p ?y)"),
        parse_pattern("((?x p ?y) OPT (?y p ?z))"),
        parse_pattern("((?x p ?y) AND (?y p ?z))"),
    ]


def chain_pattern(k=5):
    """A k-variable AND-chain — pathological over a dense graph."""
    text = "(?v0 p ?v1)"
    for i in range(1, k):
        text = f"({text} AND (?v{i} p ?v{i + 1}))"
    return parse_pattern(text)


def serial_reference(patterns, graph):
    return Session().solutions_many(patterns, graph)


def collect_iter(session, patterns, graph, **kwargs):
    """Consume solutions_iter into {cell: set}; returns (cells, report|None)."""
    got, report = {}, None
    for item in session.solutions_iter(patterns, graph, **kwargs):
        if isinstance(item, TimeoutReport):
            report = item
            break
        cell, mu = item
        got.setdefault(cell, set()).add(mu)
    return got, report


# --- Budget unit behaviour --------------------------------------------------


class TestBudget:
    def test_unbounded_never_trips(self):
        budget = Budget()
        budget.tick(10_000)
        budget.check()
        assert not budget.expired()

    def test_step_budget_trips(self):
        budget = Budget(steps=10, check_interval=1)
        with pytest.raises(DeadlineExceeded):
            for _ in range(100):
                budget.tick()
        assert budget.expired()

    def test_deadline_trips(self):
        budget = Budget(deadline=0.0)
        assert budget.expired()
        with pytest.raises(DeadlineExceeded):
            budget.check()

    def test_cancel_trips(self):
        budget = Budget()
        budget.cancel()
        assert budget.cancelled and budget.expired()
        with pytest.raises(DeadlineExceeded):
            budget.check()

    def test_elapsed_and_remaining(self):
        budget = Budget(deadline=60.0)
        assert budget.elapsed() >= 0.0
        assert 0.0 < budget.remaining() <= 60.0
        assert Budget().remaining() is None

    def test_amortized_interval(self):
        budget = Budget(steps=0, check_interval=256)
        budget.tick(10)  # under the interval: no real check yet
        with pytest.raises(DeadlineExceeded):
            budget.tick(300)

    def test_pickling_preserves_absolute_expiry(self):
        budget = Budget(deadline=60.0, steps=5)
        budget.tick(3)
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.expires_at == budget.expires_at
        assert clone.steps_used == 3 and clone.steps_limit == 5

    def test_validation(self):
        with pytest.raises(EvaluationError):
            Budget(deadline=-1)
        with pytest.raises(EvaluationError):
            Budget(steps=-1)
        with pytest.raises(EvaluationError):
            Budget(check_interval=0)

    def test_exception_hierarchy(self):
        assert issubclass(DeadlineExceeded, EvaluationError)
        assert issubclass(WorkerCrashError, EvaluationError)
        assert issubclass(FaultInjected, EvaluationError)


class TestFaultPlanUnit:
    def test_kill_guard_fires_once_locally(self):
        plan = FaultPlan(kill_at=3)
        assert plan._kill_guard.take()
        assert not plan._kill_guard.take()

    def test_kill_once_false_always_takes(self):
        plan = FaultPlan(kill_at=3, kill_once=False)
        assert plan._kill_guard.take() and plan._kill_guard.take()

    def test_raise_at(self):
        plan = FaultPlan(raise_at=2)
        plan.fire(0)
        with pytest.raises(FaultInjected):
            plan.fire(2)

    def test_plan_survives_pickling(self):
        # An *armed* plan only crosses process boundaries through the pool
        # machinery (mp.Value is inheritance-only); unarmed plans pickle.
        plan = FaultPlan(kill_at=1, stale_delta=True)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.kill_at == 1 and clone.stale_delta
        assert clone._kill_guard.take() and not clone._kill_guard.take()


# --- deadline behaviour through the entry points ----------------------------


class TestDeadlines:
    def test_engine_contains_zero_deadline(self):
        graph = line_graph(5)
        engine = Engine(parse_pattern("(?x p ?y)"))
        stats = EvaluationStatistics()
        with pytest.raises(DeadlineExceeded) as info:
            engine.contains(
                graph, Mapping.of(x="a0", y="b0"), statistics=stats, deadline=0.0
            )
        assert stats.deadline_trips == 1
        assert info.value.statistics is stats

    def test_session_check_many_step_budget(self):
        graph = line_graph()
        pattern = parse_pattern("((?x p ?y) OPT ((?y p ?z) OPT (?z p ?w)))")
        session = Session()
        mus = [Mapping.of(x=f"a{i}", y=f"b{i}") for i in range(20)]
        with pytest.raises(DeadlineExceeded):
            session.check_many(
                pattern, graph, mus, budget=Budget(steps=3, check_interval=1)
            )
        assert session.statistics.deadline_trips == 1

    def test_solutions_attaches_partial(self):
        session = Session()
        with pytest.raises(DeadlineExceeded) as info:
            session.solutions(
                chain_pattern(4), dense_graph(8), budget=Budget(steps=500, check_interval=1)
            )
        # whatever was found before the trip rides on the exception
        assert isinstance(info.value.partial, tuple)

    def test_solutions_iter_serial_yields_report_within_bound(self):
        """Acceptance: partial results + terminal report by deadline + 250ms."""
        deadline = 0.3
        session = Session()
        started = time.monotonic()
        got, report = collect_iter(
            session, [chain_pattern(5)], dense_graph(12), deadline=deadline
        )
        elapsed = time.monotonic() - started
        assert report is not None, "pathological cell must time out"
        assert elapsed < deadline + 0.25
        assert report.cells_pending >= 1
        assert report.solutions_yielded == sum(len(s) for s in got.values())
        assert session.statistics.deadline_trips == 1

    def test_solutions_iter_parallel_yields_report(self):
        deadline = 0.3
        session = Session()
        started = time.monotonic()
        got, report = collect_iter(
            session,
            [chain_pattern(5), parse_pattern("(?x p ?y)")],
            dense_graph(12),
            processes=2,
            deadline=deadline,
        )
        elapsed = time.monotonic() - started
        assert report is not None
        assert elapsed < deadline + 1.0  # pool teardown adds slack serially absent
        assert report.cells_pending >= 1

    def test_solutions_many_parallel_deadline_raises(self):
        session = Session()
        with pytest.raises(DeadlineExceeded):
            session.solutions_many(
                [chain_pattern(5), parse_pattern("(?x p ?y)")],
                dense_graph(12),
                processes=2,
                deadline=0.3,
            )
        assert session.statistics.deadline_trips == 1

    def test_timeout_report_is_terminal(self):
        session = Session()
        items = list(
            session.solutions_iter(
                [chain_pattern(5)], dense_graph(12), deadline=0.3
            )
        )
        reports = [i for i in items if isinstance(i, TimeoutReport)]
        assert len(reports) == 1 and items[-1] is reports[0]


# --- worker crashes ----------------------------------------------------------


class TestWorkerCrashRecovery:
    def test_check_many_recovers_from_sigkill(self):
        graph, pattern = line_graph(), parse_pattern("((?x p ?y) OPT (?y p ?z))")
        mus = [Mapping.of(x=f"a{i}", y=f"b{i}") for i in range(20)]
        reference = Session().check_many(pattern, graph, mus)
        session = Session(stream_grace_seconds=GRACE, faults=FaultPlan(kill_at=0))
        stats = EvaluationStatistics()
        assert session.check_many(
            pattern, graph, mus, processes=2, statistics=stats
        ) == reference
        assert session.statistics.worker_crashes >= 1
        assert stats.worker_crashes >= 1

    def test_check_iter_recovers_from_sigkill(self):
        graph, pattern = line_graph(), parse_pattern("((?x p ?y) OPT (?y p ?z))")
        mus = [Mapping.of(x=f"a{i}", y=f"b{i}") for i in range(8)]
        reference = Session().check_many(pattern, graph, mus)
        session = Session(stream_grace_seconds=GRACE, faults=FaultPlan(kill_at=0))
        assert list(
            session.check_iter(pattern, graph, mus, processes=2)
        ) == reference
        assert session.statistics.worker_crashes >= 1

    def test_solutions_many_recovers_from_sigkill(self):
        graph, patterns = line_graph(), three_patterns()
        reference = serial_reference(patterns, graph)
        session = Session(stream_grace_seconds=GRACE, faults=FaultPlan(kill_at=0))
        assert session.solutions_many(patterns, graph, processes=2) == reference
        assert session.statistics.worker_crashes >= 1

    def test_streaming_solutions_iter_recovers_from_sigkill(self):
        graph, patterns = line_graph(), three_patterns()
        reference = serial_reference(patterns, graph)
        session = Session(stream_grace_seconds=GRACE, faults=FaultPlan(kill_at=0))
        got, report = collect_iter(session, patterns, graph, processes=2)
        assert report is None
        assert got == {(i, 0): reference[i] for i in range(len(patterns))}
        assert session.statistics.worker_crashes >= 1

    def test_repeated_kills_degrade_serially(self):
        graph, pattern = line_graph(), parse_pattern("((?x p ?y) OPT (?y p ?z))")
        mus = [Mapping.of(x=f"a{i}", y=f"b{i}") for i in range(20)]
        reference = Session().check_many(pattern, graph, mus)
        session = Session(
            stream_grace_seconds=GRACE, faults=FaultPlan(kill_at=0, kill_once=False)
        )
        assert session.check_many(pattern, graph, mus, processes=2) == reference
        assert session.statistics.cells_degraded_serial >= 1

    def test_streaming_repeated_kills_degrade_serially(self):
        graph, patterns = line_graph(), three_patterns()
        reference = serial_reference(patterns, graph)
        session = Session(
            stream_grace_seconds=GRACE, faults=FaultPlan(kill_at=1, kill_once=False)
        )
        got, report = collect_iter(session, patterns, graph, processes=2)
        assert report is None
        assert got == {(i, 0): reference[i] for i in range(len(patterns))}
        assert session.statistics.cells_degraded_serial >= 1

    def test_worker_mode_carries_resilience_summary(self):
        graph, patterns = line_graph(), three_patterns()
        session = Session(stream_grace_seconds=GRACE, faults=FaultPlan(kill_at=0))
        session.solutions_many(patterns, graph, processes=2)
        mode = session.worker_mode(2)
        assert "worker crash" in mode
        # a pristine session keeps the plain mode string
        assert "worker crash" not in Session().worker_mode(2)

    def test_injected_raise_surfaces_as_fault(self):
        graph, pattern = line_graph(), parse_pattern("((?x p ?y) OPT (?y p ?z))")
        mus = [Mapping.of(x=f"a{i}", y=f"b{i}") for i in range(8)]
        session = Session(stream_grace_seconds=GRACE, faults=FaultPlan(raise_at=0))
        with pytest.raises(EvaluationError):
            session.check_many(pattern, graph, mus, processes=2)


# --- delta tampering and queue behaviour -------------------------------------


class TestDeltaTampering:
    def test_stale_delta_never_poisons_parent_cache(self):
        graph, patterns = line_graph(), three_patterns()
        reference = serial_reference(patterns, graph)
        session = Session(
            stream_grace_seconds=GRACE, faults=FaultPlan(stale_delta=True)
        )
        assert session.solutions_many(patterns, graph, processes=2) == reference
        # every shipped entry was version-perturbed, so absorb dropped them
        assert session.cache.statistics.delta_entries_stale >= 1
        # and a second (serial) run over the same session is still correct
        assert session.solutions_many(patterns, graph) == reference

    def test_corrupt_delta_never_poisons_parent_cache(self):
        graph, patterns = line_graph(), three_patterns()
        reference = serial_reference(patterns, graph)
        session = Session(
            stream_grace_seconds=GRACE, faults=FaultPlan(corrupt_delta=True)
        )
        assert session.solutions_many(patterns, graph, processes=2) == reference
        assert session.solutions_many(patterns, graph) == reference

    def test_mutated_worker_graph_withholds_stamp(self):
        graph, patterns = line_graph(), three_patterns()
        reference = serial_reference(patterns, graph)
        session = Session(
            stream_grace_seconds=GRACE, faults=FaultPlan(mutate_graph_at=0)
        )
        assert session.solutions_many(patterns, graph, processes=2) == reference
        assert session.solutions_many(patterns, graph) == reference


class TestStreamingLiveness:
    def test_queue_stall_does_not_false_degrade(self):
        graph, patterns = line_graph(), three_patterns()
        reference = serial_reference(patterns, graph)
        session = Session(
            stream_grace_seconds=2.5,
            faults=FaultPlan(stall_at=0, stall_seconds=0.4),
        )
        got, report = collect_iter(session, patterns, graph, processes=2)
        assert report is None
        assert got == {(i, 0): reference[i] for i in range(len(patterns))}
        assert session.statistics.cells_degraded_serial == 0
        assert session.statistics.worker_crashes == 0

    def test_dropped_terminal_event_is_counted_not_silent(self):
        graph, patterns = line_graph(), three_patterns()
        session = Session(
            stream_grace_seconds=GRACE, faults=FaultPlan(drop_done_at=0)
        )
        with pytest.raises(EvaluationError, match="lost 1 cell"):
            collect_iter(session, patterns, graph, processes=2)
        assert session.statistics.cells_lost == 1

    def test_invalid_grace_rejected(self):
        with pytest.raises(EvaluationError):
            Session(stream_grace_seconds=0)
        with pytest.raises(EvaluationError):
            Session(stream_grace_seconds=-1.0)
