"""Unit tests for core computation of generalised t-graphs."""

from repro.hom import GeneralizedTGraph, core_of, hom_equivalent, is_core, is_core_of, maps_to
from repro.rdf.terms import Variable
from repro.workloads.families import example3_gtgraphs, kk_tgraph


class TestCoreBasics:
    def test_redundant_branch_is_folded(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y"), ("?x", "p", "?z")], ["x"])
        core = core_of(g)
        assert len(core.triples()) == 1
        assert is_core(core)

    def test_distinguished_variables_block_folding(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y"), ("?x", "p", "?z")], ["x", "y", "z"])
        assert core_of(g) == g

    def test_core_is_subgraph_and_equivalent(self):
        g = GeneralizedTGraph.of(
            [("?x", "p", "?y"), ("?y", "q", "?z"), ("?x", "p", "?w"), ("?w", "q", "?u")],
            ["x"],
        )
        core = core_of(g)
        assert core.tgraph.issubset(g.tgraph)
        assert is_core_of(core, g)
        assert hom_equivalent(core, g)

    def test_clique_is_its_own_core(self):
        clique = GeneralizedTGraph.of(kk_tgraph(4), [])
        assert core_of(clique) == clique
        assert is_core(clique)

    def test_clique_with_self_loop_collapses(self):
        # K3 plus a self loop over the same predicate: everything folds onto the loop.
        from repro.workloads.families import R_PRED

        triples = kk_tgraph(3) + [("?loop", R_PRED, "?loop")]
        g = GeneralizedTGraph.of(triples, [])
        core = core_of(g)
        assert len(core.triples()) == 1  # everything folds onto the loop

    def test_ground_tgraph_is_a_core(self):
        g = GeneralizedTGraph.of([("a", "p", "b")], [])
        assert core_of(g) == g


class TestExample3:
    """Example 3 of the paper: (S, X) is a core, (S', X) collapses to C'."""

    def test_s_is_a_core(self):
        s, _ = example3_gtgraphs(3)
        assert is_core(s)
        assert core_of(s) == s

    def test_s_prime_core_has_four_triples(self):
        _, s_prime = example3_gtgraphs(3)
        core = core_of(s_prime)
        # C' = {(?z,q,?x), (?x,p,?y), (?y,r,?o), (?o,r,?o)}
        assert len(core.triples()) == 4
        existential = core.variables() - core.distinguished
        assert len(existential) == 1  # only the self-loop variable remains

    def test_s_prime_maps_to_its_core_and_back(self):
        _, s_prime = example3_gtgraphs(3)
        core = core_of(s_prime)
        assert maps_to(s_prime, core)
        assert maps_to(core, s_prime)


class TestHomEquivalence:
    def test_equivalent_but_not_equal(self):
        a = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        b = GeneralizedTGraph.of([("?x", "p", "?y"), ("?x", "p", "?z")], ["x"])
        assert hom_equivalent(a, b)

    def test_not_equivalent_with_different_distinguished(self):
        a = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        b = GeneralizedTGraph.of([("?x", "p", "?y")], ["y"])
        assert not hom_equivalent(a, b)

    def test_not_equivalent_when_one_direction_fails(self):
        a = GeneralizedTGraph.of([("?x", "p", "?y")], [])
        b = GeneralizedTGraph.of([("?x", "q", "?y")], [])
        assert not hom_equivalent(a, b)
