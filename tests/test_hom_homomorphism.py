"""Unit tests for the homomorphism search engine."""

import pytest

from repro.exceptions import EvaluationError
from repro.hom import (
    GeneralizedTGraph,
    TGraph,
    all_homomorphisms,
    extends_into,
    find_homomorphism,
    has_homomorphism,
    homomorphism_count,
    maps_into,
    maps_to,
)
from repro.rdf.generators import clique_graph, cycle_graph, path_graph
from repro.rdf.namespace import EX
from repro.rdf import RDFGraph, Triple
from repro.rdf.terms import Variable
from repro.sparql.mappings import Mapping

EDGE = EX.term("edge").value


def edge_tgraph(*pairs):
    return TGraph.of(*[(f"?{a}", EDGE, f"?{b}") for a, b in pairs])


class TestBasicHomomorphisms:
    def test_triangle_into_clique(self):
        triangle = edge_tgraph(("a", "b"), ("b", "c"), ("c", "a"))
        assert has_homomorphism(triangle, clique_graph(4))

    def test_triangle_not_into_directed_square(self):
        triangle = edge_tgraph(("a", "b"), ("b", "c"), ("c", "a"))
        assert not has_homomorphism(triangle, cycle_graph(4))

    def test_triangle_into_directed_triangle(self):
        triangle = edge_tgraph(("a", "b"), ("b", "c"), ("c", "a"))
        assert has_homomorphism(triangle, cycle_graph(3))

    def test_path_folds_into_single_edge_graph(self):
        path = edge_tgraph(("a", "b"), ("b", "c"), ("c", "d"))
        # a directed path cannot fold into one edge a->b (needs alternation),
        # but it can fold into a 2-cycle
        two_cycle = cycle_graph(2)
        assert has_homomorphism(path, two_cycle)
        single_edge = path_graph(1)
        assert not has_homomorphism(path, single_edge)

    def test_homomorphism_domain_is_all_variables(self):
        path = edge_tgraph(("a", "b"), ("b", "c"))
        hom = find_homomorphism(path, clique_graph(3))
        assert hom is not None
        assert set(hom) == path.variables()

    def test_constants_map_to_themselves(self):
        node0 = EX.term("node0").value
        source = TGraph.of((node0, EDGE, "?x"))
        target = path_graph(2)
        hom = find_homomorphism(source, target)
        assert hom is not None
        assert hom[Variable("x")] == EX.term("node1")

    def test_constant_missing_from_target(self):
        source = TGraph.of(("nowhere", EDGE, "?x"))
        assert not has_homomorphism(source, path_graph(2))

    def test_count_edge_into_k3(self):
        assert homomorphism_count(edge_tgraph(("a", "b")), clique_graph(3)) == 6

    def test_all_homomorphisms_are_distinct(self):
        homs = list(all_homomorphisms(edge_tgraph(("a", "b")), clique_graph(3)))
        assert len({tuple(sorted((v.name, str(t)) for v, t in h.items())) for h in homs}) == 6

    def test_empty_source_has_trivial_homomorphism(self):
        assert has_homomorphism(TGraph(), clique_graph(2))

    def test_fixed_bindings_respected(self):
        fixed = {Variable("a"): EX.term("node0")}
        hom = find_homomorphism(edge_tgraph(("a", "b")), path_graph(2), fixed)
        assert hom is not None and hom[Variable("a")] == EX.term("node0")

    def test_fixed_bindings_can_make_it_fail(self):
        fixed = {Variable("a"): EX.term("node2")}  # node2 has no outgoing edge
        assert not has_homomorphism(edge_tgraph(("a", "b")), path_graph(2), fixed)

    def test_repeated_variable_in_triple(self):
        loop = TGraph.of(("?x", EDGE, "?x"))
        assert not has_homomorphism(loop, path_graph(3))
        looped = RDFGraph([Triple.of("a", EDGE, "a")])
        assert has_homomorphism(loop, looped)

    def test_target_can_be_tgraph_with_variables(self):
        source = TGraph.of(("?a", "p", "?b"))
        target = TGraph.of(("?x", "p", "?y"), ("?y", "p", "?z"))
        assert has_homomorphism(source, target)


class TestGeneralizedRelations:
    def test_maps_to_fixes_distinguished(self):
        source = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        target_same = GeneralizedTGraph.of([("?x", "p", "?z"), ("?x", "q", "?w")], ["x"])
        assert maps_to(source, target_same)

    def test_maps_to_fails_when_distinguished_would_have_to_move(self):
        source = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        target = GeneralizedTGraph.of([("?z", "p", "?x")], ["x"])
        assert not maps_to(source, target)

    def test_maps_to_requires_same_distinguished(self):
        a = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        b = GeneralizedTGraph.of([("?x", "p", "?y")], ["y"])
        with pytest.raises(EvaluationError):
            maps_to(a, b)

    def test_maps_into_respects_mu(self):
        source = GeneralizedTGraph.of([("?x", EDGE, "?y")], ["x"])
        graph = path_graph(2)
        good = Mapping({Variable("x"): EX.term("node0")})
        bad = Mapping({Variable("x"): EX.term("node2")})
        assert maps_into(source, graph, good)
        assert not maps_into(source, graph, bad)

    def test_maps_into_requires_matching_domain(self):
        source = GeneralizedTGraph.of([("?x", EDGE, "?y")], ["x"])
        with pytest.raises(EvaluationError):
            maps_into(source, path_graph(2), Mapping({Variable("z"): EX.term("node0")}))

    def test_extends_into_compatible_extension(self):
        graph = path_graph(3)
        mu = Mapping({Variable("y"): EX.term("node1")})
        extension = extends_into(TGraph.of(("?y", EDGE, "?z")), graph, mu)
        assert extension is not None
        assert extension[Variable("z")] == EX.term("node2")

    def test_extends_into_none_when_incompatible(self):
        graph = path_graph(3)
        mu = Mapping({Variable("y"): EX.term("node3")})  # last node: no outgoing edge
        assert extends_into(TGraph.of(("?y", EDGE, "?z")), graph, mu) is None
