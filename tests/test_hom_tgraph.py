"""Unit tests for t-graphs and generalised t-graphs."""

import pytest

from repro.exceptions import ReproError
from repro.hom.tgraph import GeneralizedTGraph, TGraph, freeze_tgraph, fresh_variable_renaming
from repro.rdf import RDFGraph, Triple
from repro.rdf.terms import IRI, Variable


class TestTGraph:
    def test_of_and_len(self):
        s = TGraph.of(("?x", "p", "?y"), ("?y", "p", "?z"))
        assert len(s) == 2

    def test_variables_and_constants(self):
        s = TGraph.of(("?x", "p", "a"), ("?y", "q", "?x"))
        assert s.variables() == {Variable("x"), Variable("y")}
        assert IRI("a") in s.constants()

    def test_deduplication(self):
        s = TGraph.of(("?x", "p", "?y"), ("?x", "p", "?y"))
        assert len(s) == 1

    def test_union_and_difference(self):
        s1 = TGraph.of(("?x", "p", "?y"))
        s2 = TGraph.of(("?y", "q", "?z"))
        assert len(s1.union(s2)) == 2
        assert s1.union(s2).difference(s2) == s1

    def test_subset_relations(self):
        s1 = TGraph.of(("?x", "p", "?y"))
        s2 = TGraph.of(("?x", "p", "?y"), ("?y", "q", "?z"))
        assert s1.issubset(s2)
        assert s1.is_proper_subset(s2)
        assert not s2.is_proper_subset(s2)

    def test_ground_conversion(self):
        s = TGraph.of(("a", "p", "b"))
        assert s.is_ground()
        assert isinstance(s.to_rdf_graph(), RDFGraph)

    def test_non_ground_conversion_raises(self):
        with pytest.raises(ReproError):
            TGraph.of(("?x", "p", "b")).to_rdf_graph()

    def test_from_rdf_graph(self):
        g = RDFGraph([Triple.of("a", "p", "b")])
        assert len(TGraph.from_rdf_graph(g)) == 1

    def test_substitution_and_rename(self):
        s = TGraph.of(("?x", "p", "?y"))
        renamed = s.rename({Variable("x"): Variable("z")})
        assert renamed.variables() == {Variable("z"), Variable("y")}

    def test_equality_and_hash(self):
        assert TGraph.of(("?x", "p", "?y")) == TGraph.of(("?x", "p", "?y"))
        assert len({TGraph.of(("?x", "p", "?y")), TGraph.of(("?x", "p", "?y"))}) == 1


class TestGeneralizedTGraph:
    def test_distinguished_must_occur(self):
        with pytest.raises(ReproError):
            GeneralizedTGraph.of([("?x", "p", "?y")], ["z"])

    def test_existential_variables(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y"), ("?y", "p", "?z")], ["x"])
        assert g.existential_variables() == {Variable("y"), Variable("z")}

    def test_subgraph(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y"), ("?y", "p", "?z")], ["x"])
        sub = g.subgraph([t for t in g.triples() if Variable("z") not in t.variables()])
        assert len(sub.triples()) == 1

    def test_subgraph_requires_subset(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        with pytest.raises(ReproError):
            g.subgraph(TGraph.of(("?a", "p", "?b")))

    def test_is_subgraph_of(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y"), ("?y", "p", "?z")], ["x"])
        sub = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        assert sub.is_subgraph_of(g)
        assert not g.is_subgraph_of(sub)

    def test_with_distinguished(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        g2 = g.with_distinguished({Variable("x"), Variable("y")})
        assert g2.distinguished == {Variable("x"), Variable("y")}

    def test_equality(self):
        a = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        b = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        c = GeneralizedTGraph.of([("?x", "p", "?y")], ["y"])
        assert a == b and a != c


class TestHelpers:
    def test_fresh_variable_renaming_avoids_collisions(self):
        variables = {Variable("a"), Variable("b")}
        avoid = {Variable("a"), Variable("fresh_a_0")}
        renaming = fresh_variable_renaming(variables, avoid)
        assert set(renaming) == variables
        assert not (set(renaming.values()) & (variables | avoid))
        assert len(set(renaming.values())) == 2

    def test_freeze_tgraph(self):
        s = TGraph.of(("?x", "p", "?y"), ("?y", "q", "a"))
        graph, freezing = freeze_tgraph(s)
        assert len(graph) == 2
        assert set(freezing) == s.variables()
        # Constants survive freezing untouched.
        assert any(t.object == IRI("a") for t in graph)
