"""Unit tests for treewidth computation and the paper's tw/ctw measures."""

import networkx as nx
import pytest

from repro.hom import (
    GeneralizedTGraph,
    ctw,
    tree_decomposition,
    treewidth,
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
    tw,
)
from repro.hom.gaifman import gaifman_graph
from repro.workloads.families import kk_tgraph


class TestExactTreewidth:
    def test_empty_graph(self):
        assert treewidth_exact(nx.Graph()) == 0

    def test_edgeless_graph(self):
        g = nx.Graph()
        g.add_nodes_from(range(5))
        assert treewidth_exact(g) == 0

    def test_tree_has_treewidth_one(self):
        assert treewidth_exact(nx.balanced_tree(2, 3)) == 1

    def test_path(self):
        assert treewidth_exact(nx.path_graph(6)) == 1

    def test_cycle_has_treewidth_two(self):
        assert treewidth_exact(nx.cycle_graph(6)) == 2

    def test_clique(self):
        assert treewidth_exact(nx.complete_graph(5)) == 4

    def test_grid(self):
        assert treewidth_exact(nx.grid_2d_graph(3, 3)) == 3

    def test_disconnected_components_take_maximum(self):
        g = nx.disjoint_union(nx.complete_graph(4), nx.path_graph(4))
        assert treewidth_exact(g) == 3

    def test_complete_bipartite(self):
        assert treewidth_exact(nx.complete_bipartite_graph(3, 3)) == 3

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            treewidth_exact(nx.cycle_graph(40))


class TestBounds:
    @pytest.mark.parametrize(
        "graph",
        [nx.cycle_graph(8), nx.complete_graph(6), nx.grid_2d_graph(3, 4), nx.petersen_graph()],
    )
    def test_bounds_bracket_exact(self, graph):
        exact = treewidth_exact(graph)
        assert treewidth_lower_bound(graph) <= exact <= treewidth_upper_bound(graph)

    def test_upper_bound_zero_for_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        assert treewidth_upper_bound(g) == 0
        assert treewidth_lower_bound(g) == 0

    def test_treewidth_dispatches_to_exact_for_small(self):
        assert treewidth(nx.complete_graph(5)) == 4

    def test_treewidth_large_graph_uses_heuristic(self):
        # A long cycle is larger than the exact threshold; the heuristic is exact on cycles.
        assert treewidth(nx.cycle_graph(30)) == 2


class TestDecomposition:
    def test_decomposition_for_empty_graph(self):
        width, tree = tree_decomposition(nx.Graph())
        assert width == 0 and tree.number_of_nodes() == 1

    def test_decomposition_bags_cover_edges(self):
        graph = nx.cycle_graph(5)
        width, decomposition = tree_decomposition(graph)
        assert width >= 2
        bags = list(decomposition.nodes())
        for u, v in graph.edges():
            assert any(u in bag and v in bag for bag in bags)


class TestPaperMeasures:
    def test_tw_convention_edgeless_is_one(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y")], ["x"])
        # Gaifman graph has a single vertex (?y) and no edges.
        assert tw(g) == 1

    def test_tw_convention_no_vertices_is_one(self):
        g = GeneralizedTGraph.of([("?x", "p", "?y")], ["x", "y"])
        assert tw(g) == 1

    def test_tw_of_clique_tgraph(self):
        g = GeneralizedTGraph.of(kk_tgraph(5), [])
        assert tw(g) == 4

    def test_ctw_collapsing_example(self):
        # A "crown" of redundant paths around a single path: core is the path.
        triples = [("?x", "p", "?y"), ("?y", "p", "?z"), ("?x", "p", "?y2"), ("?y2", "p", "?z2")]
        g = GeneralizedTGraph.of(triples, ["x"])
        assert ctw(g) == 1

    def test_ctw_le_tw(self):
        from repro.workloads.families import example3_gtgraphs

        _, s_prime = example3_gtgraphs(4)
        assert ctw(s_prime) <= tw(s_prime)

    def test_distinguished_variables_excluded_from_gaifman(self):
        g = GeneralizedTGraph.of(kk_tgraph(4), ["o1"])
        graph = gaifman_graph(g)
        assert graph.number_of_nodes() == 3
        assert tw(g) == 2
