"""Integration tests: the full pipeline on realistic workloads.

These tests tie the parser, the pattern-forest translation, the width
measures and the three evaluation engines together on the social-network
workload and on the paper's Example 2, mirroring what the examples do but
with assertions instead of prints.
"""

import itertools

import pytest

from repro.evaluation import Engine, EvaluationStatistics, forest_contains
from repro.hom import homomorphism_count, all_homomorphisms, TGraph
from repro.patterns import wdpf
from repro.rdf.generators import social_network_graph, random_graph
from repro.rdf.namespace import EX, FOAF
from repro.sparql import parse_pattern
from repro.width import classify_pattern
from repro.workloads.families import example2_pattern, fk_data_graph


@pytest.fixture(scope="module")
def network():
    return social_network_graph(18, seed=11)


class TestSocialNetworkWorkload:
    def queries(self):
        knows, mbox, phone = FOAF.knows.value, FOAF.mbox.value, FOAF.phone.value
        return [
            parse_pattern(f"((?x <{knows}> ?y) OPT (?y <{mbox}> ?e))"),
            parse_pattern(
                f"(((?x <{knows}> ?y) OPT (?y <{mbox}> ?e)) OPT (?y <{phone}> ?t))"
            ),
            parse_pattern(f"((?x <{mbox}> ?e) UNION (?x <{phone}> ?t))"),
        ]

    def test_all_queries_are_width_one(self, network):
        for pattern in self.queries():
            report = classify_pattern(pattern)
            assert report.domination_width == 1

    def test_engines_agree_on_full_answer_sets(self, network):
        for pattern in self.queries():
            engine = Engine(pattern, width_bound=1)
            assert engine.solutions(network, method="naive") == engine.solutions(
                network, method="natural"
            )

    def test_membership_consistency_on_samples(self, network):
        for pattern in self.queries():
            engine = Engine(pattern, width_bound=1)
            solutions = sorted(engine.solutions(network, method="natural"), key=repr)
            for mu in solutions[:3]:
                assert engine.contains(network, mu, method="pebble")
                assert engine.contains(network, mu, method="natural")

    def test_optional_maximality_on_network(self, network):
        """No returned mapping can be strictly extended by another returned one."""
        knows, mbox = FOAF.knows.value, FOAF.mbox.value
        pattern = parse_pattern(f"((?x <{knows}> ?y) OPT (?y <{mbox}> ?e))")
        solutions = Engine(pattern).solutions(network, method="natural")
        for mu in solutions:
            for nu in solutions:
                if mu is nu:
                    continue
                if mu.domain() < nu.domain():
                    assert not all(nu[v] == mu[v] for v in mu.domain())


class TestExample2Pipeline:
    def test_statistics_and_membership(self):
        pattern = example2_pattern(2)
        forest = wdpf(pattern)
        graph = fk_data_graph(6, 30, clique_size=2, seed=4)
        engine = Engine(pattern, width_bound=1)
        solutions = engine.solutions(graph, method="natural")
        assert solutions == engine.solutions(graph, method="naive")
        stats = EvaluationStatistics()
        for mu in sorted(solutions, key=repr)[:3]:
            assert forest_contains(forest, graph, mu, stats)
        assert stats.trees_visited >= 1


class TestHomomorphismEnumerationCompleteness:
    """all_homomorphisms() finds exactly the assignments brute force finds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_against_bruteforce(self, seed):
        source = TGraph.of(
            ("?a", EX.term("p").value, "?b"),
            ("?b", EX.term("q").value, "?c"),
        )
        graph = random_graph(3, 12, seed=seed)
        found = {
            tuple(sorted((v.name, str(t)) for v, t in hom.items()))
            for hom in all_homomorphisms(source, graph)
        }
        variables = sorted(source.variables(), key=lambda v: v.name)
        values = sorted(graph.domain(), key=str)
        expected = set()
        for assignment in itertools.product(values, repeat=len(variables)):
            mapping = dict(zip(variables, assignment))
            if all(t.substitute(mapping) in graph for t in source):
                expected.add(tuple(sorted((v.name, str(t)) for v, t in mapping.items())))
        assert found == expected

    def test_count_matches_bruteforce_on_loop_query(self):
        source = TGraph.of(("?a", EX.term("p").value, "?a"))
        graph = random_graph(4, 20, seed=9)
        loops = sum(
            1 for t in graph if t.predicate == EX.term("p") and t.subject == t.object
        )
        assert homomorphism_count(source, graph) == loops
