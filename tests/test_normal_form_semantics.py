"""Semantics-preservation tests for the NR normal form transformation.

The paper assumes every wdPT is in NR normal form; the library's
``to_nr_normal_form`` transformation merges redundant nodes into their
children.  These tests check — by brute force on small graphs — that the
transformation preserves the Lemma 1 semantics, including on trees that are
*not* produced by the pattern translation (hand-built redundant trees).
"""

import itertools

import pytest

from repro.evaluation import tree_solutions
from repro.hom.tgraph import TGraph
from repro.patterns import WDPatternTree, build_wdpt, pattern_of_tree
from repro.evaluation import evaluate_pattern
from repro.rdf.generators import random_graph
from repro.rdf.namespace import EX

P = EX.term("p").value
Q = EX.term("q").value
R = EX.term("r").value


def redundant_tree_a() -> WDPatternTree:
    """root {(?x,p,?y)}; child {(?y,p,?x)} (adds nothing); grandchild {(?x,q,?z)}."""
    return WDPatternTree.from_node_specs(
        [
            (None, [("?x", P, "?y")]),
            (0, [("?y", P, "?x")]),
            (1, [("?x", Q, "?z")]),
        ]
    )


def redundant_tree_b() -> WDPatternTree:
    """A redundant middle node with two children."""
    return WDPatternTree.from_node_specs(
        [
            (None, [("?x", P, "?y")]),
            (0, [("?x", Q, "?y")]),  # adds no variable
            (1, [("?y", R, "?z")]),
            (1, [("?x", R, "?w")]),
        ]
    )


def redundant_leaf_tree() -> WDPatternTree:
    """A redundant leaf: it should simply disappear."""
    return WDPatternTree.from_node_specs(
        [
            (None, [("?x", P, "?y")]),
            (0, [("?y", Q, "?x")]),
        ]
    )


@pytest.mark.parametrize(
    "tree_builder", [redundant_tree_a, redundant_tree_b, redundant_leaf_tree]
)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_nr_normalisation_preserves_semantics(tree_builder, seed):
    """⟦T⟧G computed via the original pattern equals ⟦nr(T)⟧G via Lemma 1."""
    tree = tree_builder()
    normalized = tree.to_nr_normal_form()
    assert normalized.is_nr_normal_form()
    graph = random_graph(3, 16, seed=seed)
    # Reference semantics: serialise the ORIGINAL tree into a graph pattern and
    # evaluate compositionally (pattern_of_tree does not require NR form).
    reference = evaluate_pattern(pattern_of_tree(tree), graph)
    assert tree_solutions(normalized, graph) == reference


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_nr_normalisation_on_parsed_patterns(seed):
    """build_wdpt(normalize=True/False) evaluate to the same answers."""
    from repro.sparql.parser import parse_pattern

    pattern = parse_pattern(
        f"((?x <{P}> ?y) OPT (?y <{P}> ?x)) OPT (?x <{Q}> ?z)"
    )
    graph = random_graph(3, 14, seed=seed)
    reference = evaluate_pattern(pattern, graph)
    normalized_tree = build_wdpt(pattern, normalize=True)
    assert tree_solutions(normalized_tree, graph) == reference


def test_redundant_leaf_is_dropped():
    tree = redundant_leaf_tree()
    normalized = tree.to_nr_normal_form()
    assert normalized.size() == 1


def test_chained_redundant_nodes_all_removed():
    tree = WDPatternTree.from_node_specs(
        [
            (None, [("?x", P, "?y")]),
            (0, [("?y", P, "?x")]),
            (1, [("?x", Q, "?y")]),
            (2, [("?y", R, "?z")]),
        ]
    )
    normalized = tree.to_nr_normal_form()
    assert normalized.is_nr_normal_form()
    assert normalized.size() == 2
    child = normalized.children_of(normalized.root)[0]
    # the two redundant labels were merged into the surviving child
    assert len(normalized.pat(child)) == 3
