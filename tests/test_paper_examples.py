"""End-to-end tests of the paper's worked examples and headline claims.

These tests tie the subsystems together exactly the way the paper does:
Figure 1 (Example 3), Figure 2/3 (Examples 4-5), the Section 3.2 family, the
local-tractability gap, Proposition 5 and the Theorem 3 dichotomy on the
implemented families.
"""

import pytest

from repro.evaluation import Engine
from repro.hom import ctw, tw, is_core, maps_to
from repro.patterns import WDPatternForest, wdpf
from repro.width import (
    branch_treewidth,
    domination_width,
    local_width,
    local_width_of_forest,
)
from repro.workloads.families import (
    example3_gtgraphs,
    fk_data_graph,
    fk_forest,
    fk_pattern,
    hard_clique_tree,
    tprime_data_graph,
    tprime_pattern,
    tprime_tree,
)


class TestExample3Figure1:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_ctw_of_s_is_k_minus_one(self, k):
        s, _ = example3_gtgraphs(k)
        assert is_core(s)
        assert ctw(s) == k - 1

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_s_prime_core_collapses(self, k):
        _, s_prime = example3_gtgraphs(k)
        assert ctw(s_prime) == 1
        assert tw(s_prime) == k - 1


class TestExamples4And5Figure2:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_domination_width_is_one(self, k):
        assert domination_width(fk_forest(k)) == 1

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_not_locally_tractable(self, k):
        assert local_width_of_forest(fk_forest(k)) == k - 1

    def test_figure3_domination_structure(self):
        """S_Δ1 → S_Δ2 (the width-1 member dominates the width-(k-1) member)."""
        from repro.patterns.gtg import gtg

        forest = fk_forest(4)
        members = sorted(gtg(forest, forest[0].root_subtree()), key=ctw)
        assert [ctw(m) for m in members] == [1, 3]
        assert maps_to(members[0], members[1])
        assert not maps_to(members[1], members[0])


class TestSection32Family:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_branch_treewidth_one_but_not_locally_tractable(self, k):
        tree = tprime_tree(k)
        assert branch_treewidth(tree) == 1
        assert local_width(tree) == k - 1

    @pytest.mark.parametrize("k", [2, 3])
    def test_evaluation_is_exact_with_two_pebbles(self, k):
        engine = Engine(tprime_pattern(k), width_bound=1)
        graph = tprime_data_graph(8, 25, seed=k)
        for mu in sorted(engine.solutions(graph, method="naive"), key=repr)[:4]:
            answers = engine.contains_all_methods(graph, mu)
            assert all(answers.values())


class TestTheorem3Dichotomy:
    """The implemented families land on the two sides of the frontier."""

    def test_bounded_side(self):
        for k in (2, 3, 4):
            assert domination_width(fk_forest(k)) == 1
            assert branch_treewidth(tprime_tree(k)) == 1

    def test_unbounded_side(self):
        widths = [branch_treewidth(hard_clique_tree(k)) for k in (2, 3, 4, 5)]
        assert widths == [1, 2, 3, 4]

    @pytest.mark.parametrize("k", [2, 3])
    def test_pebble_engine_agrees_with_reference_on_fk(self, k):
        pattern = fk_pattern(k)
        engine = Engine(pattern, width_bound=1)
        graph = fk_data_graph(6, 36, clique_size=k, seed=k)
        reference = engine.solutions(graph, method="naive")
        for mu in sorted(reference, key=repr)[:5]:
            assert engine.contains(graph, mu, method="pebble")


class TestLocalTractabilityGap:
    """Bounded domination width strictly extends local tractability."""

    def test_fk_gap(self):
        forest = fk_forest(5)
        assert domination_width(forest) == 1
        assert local_width_of_forest(forest) == 4

    def test_tprime_gap(self):
        tree = tprime_tree(5)
        assert branch_treewidth(tree) == 1
        assert local_width(tree) == 4

    def test_local_bound_still_implies_domination_bound(self):
        from repro.workloads.families import chain_tree

        tree = chain_tree(4)
        assert local_width(tree) == 1
        assert domination_width(WDPatternForest([tree])) == 1
