"""Unit tests for the graph pattern -> wdPT/wdPF translation (the wdpf function)."""

import pytest

from repro.exceptions import NotWellDesignedError, PatternTreeError
from repro.patterns import build_wdpt, pattern_of_forest, pattern_of_tree, wdpf
from repro.rdf.terms import Variable
from repro.sparql import parse_pattern, tp
from repro.sparql.algebra import Union
from repro.workloads.families import example1_patterns, example2_pattern, fk_pattern


class TestBuildWdpt:
    def test_single_triple(self):
        tree = build_wdpt(parse_pattern("(?x p ?y)"))
        assert tree.size() == 1
        assert len(tree.pat(tree.root)) == 1

    def test_and_merges_roots(self):
        tree = build_wdpt(parse_pattern("((?x p ?y) AND (?y q ?z))"))
        assert tree.size() == 1
        assert len(tree.pat(tree.root)) == 2

    def test_opt_creates_child(self):
        tree = build_wdpt(parse_pattern("((?x p ?y) OPT (?y q ?z))"))
        assert tree.size() == 2
        child = tree.children_of(tree.root)[0]
        assert tree.vars(child) == {Variable("y"), Variable("z")}

    def test_nested_opt_structure(self):
        p1, _ = example1_patterns()
        tree = build_wdpt(p1)
        assert tree.size() == 3
        assert len(tree.children_of(tree.root)) == 2

    def test_and_below_opt(self):
        tree = build_wdpt(parse_pattern("(?x p ?y) OPT ((?y q ?z) AND (?z q ?w))"))
        child = tree.children_of(tree.root)[0]
        assert len(tree.pat(child)) == 2

    def test_rejects_non_well_designed(self):
        _, p2 = example1_patterns()
        with pytest.raises(NotWellDesignedError):
            build_wdpt(p2)

    def test_rejects_union(self):
        with pytest.raises(NotWellDesignedError):
            build_wdpt(parse_pattern("(?x p ?y) UNION (?x q ?y)"))

    def test_result_is_nr_normal_form(self):
        pattern = parse_pattern("((?x p ?y) OPT (?y p ?x)) OPT (?x q ?z)")
        tree = build_wdpt(pattern)
        assert tree.is_nr_normal_form()

    def test_normalize_false_keeps_redundant_nodes(self):
        pattern = parse_pattern("((?x p ?y) OPT (?y p ?x)) OPT (?x q ?z)")
        tree = build_wdpt(pattern, normalize=False)
        assert not tree.is_nr_normal_form()
        assert tree.size() == 3


class TestWdpf:
    def test_union_free_gives_single_tree(self):
        forest = wdpf(parse_pattern("((?x p ?y) OPT (?y q ?z))"))
        assert len(forest) == 1

    def test_union_operands_become_trees(self):
        forest = wdpf(parse_pattern("((?x p ?y) OPT (?z q ?x)) UNION ((?x p ?y) AND (?y r ?w))"))
        assert len(forest) == 2
        assert forest[1].size() == 1

    def test_example2_produces_two_trees(self):
        forest = wdpf(example2_pattern(2))
        assert len(forest) == 2
        assert [tree.size() for tree in forest] == [3, 2]

    def test_fk_pattern_produces_figure2_forest(self):
        forest = wdpf(fk_pattern(3))
        assert len(forest) == 3
        assert [tree.size() for tree in forest] == [3, 2, 2]
        # T1's second child carries the K_k clique: 1 connector + 3 clique triples
        t1 = forest[0]
        child_sizes = sorted(len(t1.pat(c)) for c in t1.children_of(t1.root))
        assert child_sizes == [1, 4]

    def test_forest_is_nr_normal_form(self):
        assert wdpf(fk_pattern(2)).is_nr_normal_form()


class TestRoundTrip:
    def test_pattern_of_tree_round_trips_semantically(self):
        from repro.evaluation import evaluate_pattern
        from repro.rdf.generators import random_graph
        from repro.workloads.random_patterns import random_wd_tree

        for seed in range(5):
            tree = random_wd_tree(num_nodes=3, seed=seed)
            pattern = pattern_of_tree(tree)
            rebuilt = build_wdpt(pattern)
            graph = random_graph(4, 15, seed=seed)
            assert evaluate_pattern(pattern, graph) == evaluate_pattern(
                pattern_of_tree(rebuilt), graph
            )

    def test_pattern_of_forest_has_union(self):
        forest = wdpf(fk_pattern(2))
        pattern = pattern_of_forest(forest)
        assert isinstance(pattern, Union)

    def test_pattern_of_tree_rejects_empty_node(self):
        from repro.hom.tgraph import TGraph
        from repro.patterns.tree import WDPatternTree

        tree = WDPatternTree({0: TGraph()}, {}, check_connectivity=False)
        with pytest.raises(PatternTreeError):
            pattern_of_tree(tree)
