"""Unit tests for supports, children assignments and GtG(T) (Section 3.1),
checked against the worked Example 4 of the paper."""

import pytest

from repro.exceptions import PatternTreeError
from repro.hom import ctw, maps_to
from repro.patterns import (
    ChildrenAssignment,
    WDPatternForest,
    children_assignments,
    gtg,
    is_valid_assignment,
    s_delta,
    support,
    valid_children_assignments,
    witness_subtree,
)
from repro.rdf.terms import Variable
from repro.workloads.families import example3_gtgraphs, fk_forest


@pytest.fixture(scope="module")
def f3() -> WDPatternForest:
    return fk_forest(3)


class TestWitnessAndSupport:
    def test_witness_subtree_exact_match(self, f3):
        t1 = f3[0]
        witness = witness_subtree(t1, frozenset({Variable("x"), Variable("y")}))
        assert witness is not None and witness.nodes == {0}

    def test_witness_subtree_none_when_variables_missing(self, f3):
        t1 = f3[0]
        assert witness_subtree(t1, frozenset({Variable("x")})) is None

    def test_witness_subtree_grows_maximally(self, f3):
        t1 = f3[0]
        target = frozenset({Variable("x"), Variable("y"), Variable("z")})
        witness = witness_subtree(t1, target)
        assert witness is not None and witness.nodes == {0, 1}

    def test_support_of_root_subtree(self, f3):
        """Example 4: supp(T1[r1]) = {1, 2} (0-indexed: {0, 1})."""
        subtree = f3[0].root_subtree()
        supp = support(f3, subtree)
        assert set(supp) == {0, 1}

    def test_support_of_extended_subtree(self, f3):
        """supp(T1[r1, n11]) contains T1 and T3 (vars {x, y, z})."""
        subtree = f3[0].subtree({0, 1})
        supp = support(f3, subtree)
        assert set(supp) == {0, 2}
        assert supp[2].nodes == {0}


class TestChildrenAssignments:
    def test_enumeration_for_root_subtree(self, f3):
        subtree = f3[0].root_subtree()
        assignments = list(children_assignments(f3, subtree))
        # T1[r1] has 2 children in T1 and 1 child in T2: (2+1)*(1+1)-1 = 5
        assert len(assignments) == 5

    def test_assignment_domain_non_empty(self):
        with pytest.raises(PatternTreeError):
            ChildrenAssignment({})

    def test_full_tree_has_no_assignments(self, f3):
        subtree = f3[0].full_subtree()
        assert list(children_assignments(f3, subtree)) == []

    def test_s_delta_renames_private_variables(self, f3):
        """Example 4: in S_Δ1 = pat(T1[r1]) ∪ ρ(n11) ∪ ρ(n2) the variable ?z of
        one of the two q-children must be renamed apart."""
        subtree = f3[0].root_subtree()
        supp = support(f3, subtree)
        delta1 = ChildrenAssignment({0: 1, 1: 1})  # n11 and n2
        result = s_delta(f3, subtree, delta1, supp)
        # pat = {(?x,p,?y)}, n11 = {(?z,q,?x)}, n2 = {(?z,q,?x),(?w,q,?z)}
        # after renaming apart there are 4 distinct triples (not 3)
        assert len(result.triples()) == 4
        assert result.distinguished == {Variable("x"), Variable("y")}

    def test_s_delta_rejects_bad_assignment(self, f3):
        subtree = f3[0].root_subtree()
        with pytest.raises(PatternTreeError):
            s_delta(f3, subtree, ChildrenAssignment({0: 99}))

    def test_invalid_assignment_detected(self, f3):
        """Example 4: Δ3 = {1 -> n11} is not valid because T2's witness maps into S_Δ3."""
        subtree = f3[0].root_subtree()
        supp = support(f3, subtree)
        delta3 = ChildrenAssignment({0: 1})  # only n11 chosen, tree T2 left out
        assert not is_valid_assignment(f3, subtree, delta3, supp)

    def test_valid_assignments_for_root_subtree(self, f3):
        """Example 4: VCA(T1[r1]) = {Δ1, Δ2} with Δ1 = {1→n11, 2→n2}, Δ2 = {1→n12, 2→n2}."""
        subtree = f3[0].root_subtree()
        valid = list(valid_children_assignments(f3, subtree))
        assert len(valid) == 2
        domains = {frozenset(assignment.domain()) for assignment in valid}
        assert domains == {frozenset({0, 1})}
        chosen_children = {assignment[0] for assignment in valid}
        assert chosen_children == {1, 2}  # n11 and n12


class TestGtG:
    def test_gtg_of_root_subtree_matches_example4(self, f3):
        """GtG(T1[r1]) = {(S_Δ1, {x,y}), (S_Δ2, {x,y})} with ctw 1 and k-1."""
        members = gtg(f3, f3[0].root_subtree())
        assert len(members) == 2
        widths = sorted(ctw(member) for member in members)
        assert widths == [1, 2]  # k = 3 here, so k-1 = 2
        low = min(members, key=ctw)
        high = max(members, key=ctw)
        assert maps_to(low, high)  # the width-1 member dominates

    def test_gtg_of_t1_r1_n11_matches_figure1(self, f3):
        """GtG(T1[r1, n11]) is the single generalised t-graph (S', {x,y,z}) of Figure 1."""
        members = gtg(f3, f3[0].subtree({0, 1}))
        assert len(members) == 1
        member = next(iter(members))
        _, s_prime = example3_gtgraphs(3)
        assert member.distinguished == s_prime.distinguished
        assert ctw(member) == 1
        # Same number of triples as Figure 1's S' (modulo renaming of fresh variables).
        assert len(member.triples()) == len(s_prime.triples())

    def test_gtg_of_t2_equals_gtg_of_t1_root(self, f3):
        """Example 4: GtG(T2[r2]) = GtG(T1[r1])."""
        members_t1 = gtg(f3, f3[0].root_subtree())
        members_t2 = gtg(f3, f3[1].root_subtree())
        assert members_t1 == members_t2

    def test_gtg_of_full_trees_is_empty(self, f3):
        for tree in f3:
            assert gtg(f3, tree.full_subtree()) == frozenset()
