"""Unit tests for well-designed pattern trees and subtrees."""

import pytest

from repro.exceptions import PatternTreeError
from repro.hom.tgraph import TGraph
from repro.patterns import Subtree, WDPatternTree
from repro.rdf.terms import Variable


def simple_tree() -> WDPatternTree:
    """root {(?x,p,?y)} with children {(?y,q,?z)} and {(?x,r,?w)}; the first
    child has a grandchild {(?z,s,?u)}."""
    return WDPatternTree.from_node_specs(
        [
            (None, [("?x", "p", "?y")]),
            (0, [("?y", "q", "?z")]),
            (0, [("?x", "r", "?w")]),
            (1, [("?z", "s", "?u")]),
        ]
    )


class TestConstruction:
    def test_from_node_specs(self):
        tree = simple_tree()
        assert tree.size() == 4
        assert tree.root == 0
        assert tree.children_of(0) == (1, 2)
        assert tree.parent_of(3) == 1

    def test_rejects_orphan_nodes(self):
        with pytest.raises(PatternTreeError):
            WDPatternTree({0: TGraph.of(("?x", "p", "?y")), 1: TGraph.of(("?y", "q", "?z"))}, {})

    def test_rejects_missing_parent(self):
        with pytest.raises(PatternTreeError):
            WDPatternTree(
                {0: TGraph.of(("?x", "p", "?y")), 1: TGraph.of(("?y", "q", "?z"))}, {1: 7}
            )

    def test_rejects_root_with_parent(self):
        with pytest.raises(PatternTreeError):
            WDPatternTree(
                {0: TGraph.of(("?x", "p", "?y")), 1: TGraph.of(("?y", "q", "?z"))},
                {0: 1, 1: 0},
            )

    def test_rejects_disconnected_variable_occurrences(self):
        # ?z appears in both children but not in the root: condition (3) fails.
        with pytest.raises(PatternTreeError):
            WDPatternTree.from_node_specs(
                [
                    (None, [("?x", "p", "?y")]),
                    (0, [("?x", "q", "?z")]),
                    (0, [("?z", "r", "?y")]),
                ]
            )

    def test_connectivity_check_can_be_disabled(self):
        tree = WDPatternTree.from_node_specs(
            [
                (None, [("?x", "p", "?y")]),
                (0, [("?x", "q", "?z")]),
                (0, [("?z", "r", "?y")]),
            ],
            check_connectivity=False,
        )
        assert tree.size() == 3

    def test_only_first_spec_may_be_root(self):
        with pytest.raises(PatternTreeError):
            WDPatternTree.from_node_specs(
                [(None, [("?x", "p", "?y")]), (None, [("?y", "q", "?z")])]
            )

    def test_immutable(self):
        tree = simple_tree()
        with pytest.raises(AttributeError):
            tree._root = 5


class TestQueries:
    def test_pat_and_vars(self):
        tree = simple_tree()
        assert tree.vars(0) == {Variable("x"), Variable("y")}
        assert len(tree.pattern()) == 4
        assert tree.variables() == {Variable(v) for v in "xyzwu"}

    def test_branch(self):
        tree = simple_tree()
        assert tree.branch(0) == ()
        assert tree.branch(1) == (0,)
        assert tree.branch(3) == (0, 1)

    def test_depth(self):
        assert simple_tree().depth() == 2

    def test_pretty_contains_all_nodes(self):
        text = simple_tree().pretty()
        assert "[0]" in text and "[3]" in text


class TestNRNormalForm:
    def test_simple_tree_is_nr(self):
        assert simple_tree().is_nr_normal_form()

    def test_redundant_node_detected_and_removed(self):
        tree = WDPatternTree.from_node_specs(
            [
                (None, [("?x", "p", "?y")]),
                (0, [("?y", "p", "?x")]),  # no new variable
                (1, [("?x", "q", "?z")]),
            ]
        )
        assert not tree.is_nr_normal_form()
        normalized = tree.to_nr_normal_form()
        assert normalized.is_nr_normal_form()
        assert normalized.size() == 2
        # the redundant node's label was merged into its child
        child = normalized.children_of(normalized.root)[0]
        assert len(normalized.pat(child)) == 2

    def test_normalization_is_idempotent(self):
        tree = simple_tree()
        assert tree.to_nr_normal_form().size() == tree.size()


class TestSubtrees:
    def test_root_and_full_subtree(self):
        tree = simple_tree()
        assert tree.root_subtree().nodes == {0}
        assert tree.full_subtree().is_full()

    def test_subtree_must_contain_root(self):
        tree = simple_tree()
        with pytest.raises(PatternTreeError):
            Subtree(tree, frozenset({1}))

    def test_subtree_must_be_parent_closed(self):
        tree = simple_tree()
        with pytest.raises(PatternTreeError):
            tree.subtree({0, 3})

    def test_subtree_children(self):
        tree = simple_tree()
        assert tree.root_subtree().children() == (1, 2)
        assert tree.subtree({0, 1}).children() == (2, 3)
        assert tree.full_subtree().children() == ()

    def test_extend(self):
        tree = simple_tree()
        extended = tree.root_subtree().extend(1)
        assert extended.nodes == {0, 1}
        with pytest.raises(PatternTreeError):
            extended.extend(3).extend(3)

    def test_enumeration_counts(self):
        tree = simple_tree()
        subtrees = list(tree.subtrees())
        # root alone, root+1, root+2, root+1+2, root+1+3, root+1+2+3 -> 6
        assert len(subtrees) == 6
        assert len({s.nodes for s in subtrees}) == 6

    def test_subtree_pat_and_vars(self):
        tree = simple_tree()
        sub = tree.subtree({0, 1})
        assert sub.variables() == {Variable("x"), Variable("y"), Variable("z")}
        assert len(sub.pat()) == 2
