"""Unit tests for the existential k-pebble game.

The tests exercise the two facts the paper relies on (the game relaxes the
homomorphism relation, and is exact when ``ctw ≤ k − 1``) plus the basic
properties of Proposition 4.
"""

import pytest

from repro.exceptions import EvaluationError
from repro.hom import GeneralizedTGraph, ctw, maps_into
from repro.pebble import PebbleGameStatistics, pebble_game_winner, pebble_maps_into
from repro.rdf import RDFGraph, Triple
from repro.rdf.generators import clique_graph, path_graph
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable
from repro.sparql.mappings import Mapping

EDGE = EX.term("edge").value


def edges(*pairs):
    return [(f"?{a}", EDGE, f"?{b}") for a, b in pairs]


class TestValidation:
    def test_requires_k_at_least_two(self):
        g = GeneralizedTGraph.of(edges(("a", "b")), [])
        with pytest.raises(ValueError):
            pebble_game_winner(g, path_graph(2), Mapping.EMPTY, 1)

    def test_requires_matching_domain(self):
        g = GeneralizedTGraph.of(edges(("a", "b")), ["a"])
        with pytest.raises(EvaluationError):
            pebble_game_winner(g, path_graph(2), Mapping.EMPTY, 2)


class TestRelaxation:
    """(S,X) →µ G implies (S,X) →µ_k G for every k >= 2 (property (2))."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_homomorphism_implies_pebble_win(self, k):
        source = GeneralizedTGraph.of(edges(("a", "b"), ("b", "c"), ("c", "a")), [])
        graph = clique_graph(4)
        assert maps_into(source, graph, Mapping.EMPTY)
        assert pebble_game_winner(source, graph, Mapping.EMPTY, k)

    def test_two_pebbles_cannot_detect_triangle(self):
        """The classic false positive: a triangle 'maps' into a long odd cycle
        for the 2-pebble game although no homomorphism exists."""
        source = GeneralizedTGraph.of(edges(("a", "b"), ("b", "c"), ("c", "a")), [])
        # A symmetric 5-cycle: locally every edge extends, but there is no triangle.
        triples = []
        for i in range(5):
            triples.append(Triple.of(EX.term(f"c{i}"), EDGE, EX.term(f"c{(i + 1) % 5}")))
            triples.append(Triple.of(EX.term(f"c{(i + 1) % 5}"), EDGE, EX.term(f"c{i}")))
        graph = RDFGraph(triples)
        assert not maps_into(source, graph, Mapping.EMPTY)
        assert pebble_game_winner(source, graph, Mapping.EMPTY, 2)

    def test_three_pebbles_detect_triangle(self):
        source = GeneralizedTGraph.of(edges(("a", "b"), ("b", "c"), ("c", "a")), [])
        triples = []
        for i in range(5):
            triples.append(Triple.of(EX.term(f"c{i}"), EDGE, EX.term(f"c{(i + 1) % 5}")))
            triples.append(Triple.of(EX.term(f"c{(i + 1) % 5}"), EDGE, EX.term(f"c{i}")))
        graph = RDFGraph(triples)
        # ctw of the triangle (no distinguished variables) is 2, so by
        # Proposition 3 the 3-pebble game is exact.
        assert ctw(source) == 2
        assert not pebble_game_winner(source, graph, Mapping.EMPTY, 3)


class TestExactnessOnLowWidth:
    """Proposition 3: for ctw(S,X) <= k-1 the game coincides with →µ."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_path_queries_two_pebbles_exact(self, seed):
        from repro.rdf.generators import random_graph

        source = GeneralizedTGraph.of(edges(("a", "b"), ("b", "c"), ("c", "d")), ["a"])
        assert ctw(source) == 1
        graph = random_graph(4, 10, predicates=("edge",), seed=seed)
        for start in sorted(graph.subjects(), key=str)[:3]:
            mu = Mapping({Variable("a"): start})
            assert pebble_game_winner(source, graph, mu, 2) == maps_into(source, graph, mu)

    def test_distinguished_triangle_exact_with_two_pebbles(self):
        # All but one variable distinguished: the Gaifman graph is a single
        # vertex, ctw = 1, so 2 pebbles are exact even though the shape is a triangle.
        source = GeneralizedTGraph.of(edges(("a", "b"), ("b", "c"), ("c", "a")), ["a", "b"])
        graph = clique_graph(3)
        nodes = sorted(graph.domain(), key=str)
        mu_good = Mapping({Variable("a"): nodes[0], Variable("b"): nodes[1]})
        assert pebble_game_winner(source, graph, mu_good, 2) == maps_into(source, graph, mu_good)
        mu_bad = Mapping({Variable("a"): nodes[0], Variable("b"): nodes[0]})
        assert pebble_game_winner(source, graph, mu_bad, 2) == maps_into(source, graph, mu_bad)


class TestEdgeCases:
    def test_no_existential_variables_reduces_to_mu_check(self):
        source = GeneralizedTGraph.of(edges(("a", "b")), ["a", "b"])
        graph = path_graph(1)
        good = Mapping({Variable("a"): EX.term("node0"), Variable("b"): EX.term("node1")})
        bad = Mapping({Variable("a"): EX.term("node1"), Variable("b"): EX.term("node0")})
        for k in (2, 3):
            assert pebble_game_winner(source, graph, good, k)
            assert not pebble_game_winner(source, graph, bad, k)

    def test_empty_graph_loses_when_existential_variables_exist(self):
        source = GeneralizedTGraph.of(edges(("a", "b")), [])
        assert not pebble_game_winner(source, RDFGraph(), Mapping.EMPTY, 2)

    def test_unsatisfiable_unary_constraint(self):
        source = GeneralizedTGraph.of([("?a", EDGE, "?a")], [])
        assert not pebble_game_winner(source, path_graph(3), Mapping.EMPTY, 2)

    def test_statistics_populated(self):
        source = GeneralizedTGraph.of(edges(("a", "b"), ("b", "c")), [])
        stats = PebbleGameStatistics()
        pebble_game_winner(source, clique_graph(3), Mapping.EMPTY, 2, statistics=stats)
        assert stats.candidate_partial_homs > 0
        assert "PebbleGameStatistics" in repr(stats)

    def test_generic_and_fast_path_agree(self):
        """The k=2 arc-consistency fast path and the generic fixpoint must agree."""
        from repro.pebble.game import _winner_generic, _winner_two_pebbles
        from repro.rdf.generators import random_graph

        source = GeneralizedTGraph.of(
            edges(("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")), ["d"]
        )
        for seed in range(4):
            graph = random_graph(4, 12, predicates=("edge",), seed=seed)
            domain_values = sorted(graph.domain(), key=str)
            for value in domain_values[:2]:
                mu = Mapping({Variable("d"): value})
                fixed = {Variable("d"): value}
                triples = list(source.triples())
                existential = sorted(source.existential_variables(), key=lambda v: v.name)
                fast = _winner_two_pebbles(triples, fixed, existential, domain_values, graph, None)
                generic = _winner_generic(triples, fixed, existential, domain_values, graph, 2, None)
                assert fast == generic

    def test_alias(self):
        source = GeneralizedTGraph.of(edges(("a", "b")), [])
        assert pebble_maps_into(source, clique_graph(2), Mapping.EMPTY, 2)
