"""The indexed consistency kernel must be indistinguishable from the per-call
pebble game: property-style agreement on randomized instances, edge cases,
mutation refresh, and the cache/batch integration built on top of it."""

import random

import pytest

from repro.evaluation import BatchEngine, Engine, EvaluationCache
from repro.exceptions import EvaluationError
from repro.hom import target_index
from repro.hom.tgraph import GeneralizedTGraph
from repro.pebble import ConsistencyKernel, PebbleGameStatistics
from repro.pebble.game import pebble_game_winner, reference_pebble_game_winner
from repro.rdf import RDFGraph, Triple
from repro.rdf.generators import random_graph
from repro.rdf.namespace import EX
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.mappings import Mapping
from repro.workloads.families import fk_data_graph, fk_forest

NOWHERE = IRI("http://example.org/__nowhere__")


def random_instance(seed):
    """A random (generalised t-graph, RDF graph, candidate mappings) triple."""
    rng = random.Random(seed)
    names = ["a", "b", "c", "d", "e"][: rng.randint(2, 5)]
    constants = [EX.term("k0").value, EX.term("k1").value]
    triples = []
    for _ in range(rng.randint(2, 6)):
        s = "?" + rng.choice(names)
        o = rng.choice(constants) if rng.random() < 0.15 else "?" + rng.choice(names)
        triples.append((s, rng.choice(["p", "q"]), o))
    used = sorted({v.name for t in triples for v in TriplePattern.of(*t).variables()})
    distinguished = rng.sample(used, rng.randint(0, len(used)))
    gtgraph = GeneralizedTGraph.of(triples, distinguished)
    graph = random_graph(rng.randint(2, 5), rng.randint(3, 14), predicates=("p", "q"), seed=seed)
    values = sorted(graph.domain(), key=str) + [NOWHERE]
    mappings = []
    for _ in range(6):
        if distinguished and values:
            mappings.append(
                Mapping({Variable(name): rng.choice(values) for name in distinguished})
            )
        else:
            mappings.append(Mapping.EMPTY)
    return gtgraph, graph, mappings


class TestAgreementWithReference:
    """Kernel verdicts == per-call verdicts on randomized (S, X), G, µ, k."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_randomized_agreement(self, seed, k):
        gtgraph, graph, mappings = random_instance(seed)
        kernel = ConsistencyKernel(gtgraph, graph, k)
        for mu in mappings:
            expected = reference_pebble_game_winner(gtgraph, graph, mu, k)
            # one shared kernel across all mappings ...
            assert kernel.winner(mu) == expected
            # ... and the kernel-backed public entry point
            assert pebble_game_winner(gtgraph, graph, mu, k) == expected

    @pytest.mark.parametrize("k", [2, 3])
    def test_no_existential_variables(self, k):
        source = GeneralizedTGraph.of([("?a", EX.p.value, "?b")], ["a", "b"])
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        kernel = ConsistencyKernel(source, graph, k)
        good = Mapping({Variable("a"): EX.a, Variable("b"): EX.b})
        bad = Mapping({Variable("a"): EX.b, Variable("b"): EX.a})
        assert kernel.winner(good) is True
        assert kernel.winner(bad) is False

    @pytest.mark.parametrize("k", [2, 3])
    def test_empty_domain_loses(self, k):
        source = GeneralizedTGraph.of([("?a", EX.p.value, "?b")], [])
        empty = RDFGraph()  # callers must keep the (weakly referenced) graph alive
        kernel = ConsistencyKernel(source, empty, k)
        assert kernel.winner(Mapping.EMPTY) is False
        assert reference_pebble_game_winner(source, empty, Mapping.EMPTY, k) is False

    def test_prebuilt_index_same_verdicts(self):
        gtgraph, graph, mappings = random_instance(7)
        shared = target_index(graph)
        with_index = ConsistencyKernel(gtgraph, graph, 2, index=shared)
        without = ConsistencyKernel(gtgraph, graph, 2)
        for mu in mappings:
            assert with_index.winner(mu) == without.winner(mu)


class TestValidation:
    def test_requires_k_at_least_two(self):
        source = GeneralizedTGraph.of([("?a", EX.p.value, "?b")], [])
        with pytest.raises(ValueError):
            ConsistencyKernel(source, RDFGraph(), 1)

    def test_requires_matching_domain(self):
        source = GeneralizedTGraph.of([("?a", EX.p.value, "?b")], ["a"])
        kernel = ConsistencyKernel(source, RDFGraph(), 2)
        with pytest.raises(EvaluationError):
            kernel.winner(Mapping.EMPTY)


class TestRefreshOnMutation:
    def test_kernel_tracks_graph_version(self):
        source = GeneralizedTGraph.of([("?x", EX.p.value, "?o")], ["x"])
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        kernel = ConsistencyKernel(source, graph, 2)
        mu = Mapping({Variable("x"): EX.a})
        assert kernel.winner(mu) is True
        graph.discard(Triple.of(EX.a, EX.p, EX.b))
        assert kernel.winner(mu) is False  # refreshed, not stale
        graph.add(Triple.of(EX.a, EX.p, EX.b))
        assert kernel.winner(mu) is True
        assert kernel.version == graph.version

    def test_cost_and_repr(self):
        gtgraph, graph, _ = random_instance(3)
        kernel = ConsistencyKernel(gtgraph, graph, 2).prepare()
        assert kernel.cost() >= 1
        assert "ConsistencyKernel" in repr(kernel)
        assert kernel.k == 2 and kernel.graph is graph and kernel.gtgraph is gtgraph

    def test_lazy_setup_short_circuits(self):
        # A fully distinguished instance must answer without ever scanning
        # dom(G) or building base domains — the per-call implementation's
        # short-circuit, preserved by the lazy solver build.
        source = GeneralizedTGraph.of([("?a", EX.p.value, "?b")], ["a", "b"])
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        kernel = ConsistencyKernel(source, graph, 2)
        assert kernel.winner(Mapping({Variable("a"): EX.a, Variable("b"): EX.b})) is True
        assert kernel._domain_values is None  # solver never built
        # prepare() is a no-op for such instances, too.
        assert kernel.prepare()._domain_values is None

    def test_kernel_does_not_pin_its_graph(self):
        # The kernel references the graph weakly, so a cache holding kernels
        # still lets the graph (and its store) be collected.
        import gc

        source = GeneralizedTGraph.of([("?x", EX.p.value, "?o")], ["x"])
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        kernel = ConsistencyKernel(source, graph, 2)
        assert kernel.winner(Mapping({Variable("x"): EX.a})) is True
        del graph
        gc.collect()
        with pytest.raises(EvaluationError):
            kernel.graph

    def test_cached_pebble_graph_is_collectable(self):
        import gc

        forest = fk_forest(2)
        cache = EvaluationCache()
        engine = Engine(forest=forest, width_bound=1, cache=cache)
        graph = fk_data_graph(5, 20, clique_size=2, seed=1)
        mu = Mapping({Variable("x"): EX.term("node0"), Variable("y"): EX.term("node1")})
        engine.contains(graph, mu, method="pebble")
        assert len(cache._graphs) == 1
        del graph
        gc.collect()
        assert len(cache._graphs) == 0  # kernels must not keep the graph alive


class TestStatistics:
    def test_two_pebble_candidates_match_reference(self):
        gtgraph, graph, mappings = random_instance(5)
        kernel = ConsistencyKernel(gtgraph, graph, 2)
        for mu in mappings:
            mine, theirs = PebbleGameStatistics(), PebbleGameStatistics()
            assert kernel.winner(mu, mine) == reference_pebble_game_winner(
                gtgraph, graph, mu, 2, theirs
            )
            assert mine.candidate_partial_homs == theirs.candidate_partial_homs

    def test_generic_candidates_match_reference(self):
        gtgraph, graph, mappings = random_instance(9)
        kernel = ConsistencyKernel(gtgraph, graph, 3)
        for mu in mappings:
            mine, theirs = PebbleGameStatistics(), PebbleGameStatistics()
            assert kernel.winner(mu, mine) == reference_pebble_game_winner(
                gtgraph, graph, mu, 3, theirs
            )
            assert mine.candidate_partial_homs == theirs.candidate_partial_homs
            assert mine.removed == theirs.removed


class TestCacheIntegration:
    def test_kernel_shared_across_mappings(self):
        forest = fk_forest(2)
        graph = fk_data_graph(6, 36, clique_size=2, seed=9)
        cache = EvaluationCache()
        engine = Engine(forest=forest, width_bound=1, cache=cache)
        plain = Engine(forest=forest, width_bound=1)
        x, y = Variable("x"), Variable("y")
        p = EX.term("p")
        mappings = sorted(
            {Mapping({x: t.subject, y: t.object}) for t in graph if t.predicate == p},
            key=repr,
        )
        assert len(mappings) > 2
        for mu in mappings:
            assert engine.contains(graph, mu, method="pebble") == plain.contains(
                graph, mu, method="pebble"
            )
        stats = cache.statistics
        # Distinct mappings share the per-structure kernels: far fewer kernel
        # builds than pebble-verdict computations.
        assert stats.kernel_misses >= 1
        assert stats.kernel_hits > stats.kernel_misses

    def test_warm_pebble_builds_kernels_ahead(self):
        forest = fk_forest(2)
        graph = fk_data_graph(6, 36, clique_size=2, seed=9)
        cache = EvaluationCache()
        built = cache.warm_pebble(forest, graph, pebbles=2)
        assert built >= 1  # at least the root-subtree children of some tree
        assert cache.statistics.kernel_misses == built
        # Warming with explicit mappings targets exactly the witness-subtree
        # instances those mappings reach (possibly fewer than the root-based
        # default) and answers from the already-built kernels where it can.
        x, y = Variable("x"), Variable("y")
        p = EX.term("p")
        mappings = [
            Mapping({x: t.subject, y: t.object}) for t in graph if t.predicate == p
        ]
        assert cache.warm_pebble(forest, graph, pebbles=2, mappings=mappings) >= 1
        assert cache.statistics.kernel_hits >= 1


class TestBatchWarm:
    def test_warm_then_answers_identical(self):
        forest = fk_forest(2)
        graph = fk_data_graph(6, 30, clique_size=2, seed=2)
        x, y = Variable("x"), Variable("y")
        p = EX.term("p")
        mappings = sorted(
            {Mapping({x: t.subject, y: t.object}) for t in graph if t.predicate == p},
            key=repr,
        )
        plain = Engine(forest=forest, width_bound=1)
        expected = [plain.contains(graph, mu, method="pebble") for mu in mappings]
        batch = BatchEngine(forest=forest, width_bound=1)
        kernels = batch.warm(graph, mappings, method="pebble")
        assert kernels >= 1
        assert batch.contains_many(graph, mappings, method="pebble") == expected

    def test_warm_non_pebble_builds_index_only(self):
        forest = fk_forest(2)
        graph = fk_data_graph(5, 20, clique_size=2, seed=1)
        batch = BatchEngine(forest=forest, width_bound=1)
        assert batch.warm(graph, method="natural") == 0
        assert batch.warm(graph, method="naive") == 0

    def test_parallel_path_identical_after_warm(self):
        forest = fk_forest(2)
        graph = fk_data_graph(6, 30, clique_size=2, seed=2)
        x, y = Variable("x"), Variable("y")
        p = EX.term("p")
        mappings = sorted(
            {Mapping({x: t.subject, y: t.object}) for t in graph if t.predicate == p},
            key=repr,
        )
        plain = Engine(forest=forest, width_bound=1)
        expected = [plain.contains(graph, mu, method="pebble") for mu in mappings]
        batch = BatchEngine(forest=forest, width_bound=1, processes=2)
        assert batch.contains_many(graph, mappings, method="pebble") == expected


class TestDomainMemoization:
    def test_domain_memoized_per_version(self):
        graph = RDFGraph([Triple.of(EX.a, EX.p, EX.b)])
        first = graph.domain()
        assert graph.domain() is first  # memo hit returns the same object
        assert graph.sorted_domain() == tuple(sorted(first, key=str))
        assert graph.sorted_domain() is graph.sorted_domain()
        graph.add(Triple.of(EX.b, EX.p, EX.c))
        assert graph.domain() is not first
        assert EX.c in graph.domain()
        assert EX.c in graph.sorted_domain()

    def test_pattern_solutions_index_join(self):
        graph = RDFGraph(
            [Triple.of(EX.a, EX.p, EX.b), Triple.of(EX.b, EX.p, EX.c)]
        )
        index = target_index(graph)
        pattern = TriplePattern.of("?x", EX.p.value, "?y")
        bindings = sorted(index.pattern_solutions(pattern), key=repr)
        assert len(bindings) == 2
        fixed = {Variable("x"): EX.a}
        restricted = list(index.pattern_solutions(pattern, fixed))
        assert restricted == [{Variable("y"): EX.b}]
        # Repeated variables must receive equal images.
        loop = TriplePattern.of("?x", EX.p.value, "?x")
        assert list(index.pattern_solutions(loop)) == []
