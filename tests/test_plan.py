"""Unit tests for the planning layer (Strategy registry, Plan, Planner)."""

import pytest

from repro.evaluation import Engine, Plan, Planner, method_names, strategy_for
from repro.exceptions import EvaluationError
from repro.workloads.families import fk_data_graph, fk_forest


class TestRegistry:
    def test_method_names(self):
        assert method_names() == ("auto", "naive", "natural", "pebble")

    def test_strategy_for_known(self):
        for name in ("naive", "natural", "pebble"):
            assert strategy_for(name).name == name

    def test_strategy_for_unknown(self):
        with pytest.raises(EvaluationError):
            strategy_for("quantum")

    def test_enumeration_support_flags(self):
        assert strategy_for("naive").supports_enumeration
        assert strategy_for("natural").supports_enumeration
        assert not strategy_for("pebble").supports_enumeration


class TestPlanner:
    def test_explicit_methods(self):
        planner = Planner()
        assert planner.plan("naive").strategy == "naive"
        assert planner.plan("natural").strategy == "natural"
        for plan in (planner.plan("naive"), planner.plan("natural")):
            assert plan.width is None
            assert not plan.certified

    def test_pebble_per_call_width_wins_over_bound(self):
        planner = Planner(width_bound=1)
        plan = planner.plan("pebble", width=3)
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 3, False)

    def test_pebble_without_any_bound_needs_oracle(self):
        with pytest.raises(EvaluationError):
            Planner().plan("pebble")

    def test_pebble_oracle_certifies(self):
        planner = Planner(width_oracle=lambda: 2)
        plan = planner.plan("pebble")
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 2, True)

    def test_auto_prefers_free_bound(self):
        plan = Planner(width_bound=1).plan("auto")
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 1, False)

    def test_auto_uses_known_width_but_never_computes(self):
        def exploding_oracle():
            raise AssertionError("auto must not compute the domination width")

        planner = Planner(known_width=lambda: None, width_oracle=exploding_oracle)
        assert planner.plan("auto").strategy == "natural"
        planner = Planner(known_width=lambda: 2, width_oracle=exploding_oracle)
        plan = planner.plan("auto")
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 2, True)

    def test_invalid_width_bound(self):
        with pytest.raises(EvaluationError):
            Planner(width_bound=0)

    def test_unknown_method(self):
        with pytest.raises(EvaluationError):
            Planner().plan("quantum")

    def test_enumeration_auto_is_natural(self):
        plan = Planner(width_bound=1).plan_enumeration("auto")
        assert plan.strategy == "natural"

    def test_enumeration_rejects_pebble(self):
        with pytest.raises(EvaluationError):
            Planner(width_bound=1).plan_enumeration("pebble")

    def test_plan_is_frozen(self):
        plan = Planner().plan("natural")
        with pytest.raises(AttributeError):
            plan.strategy = "naive"

    def test_summary(self):
        assert Planner().plan("natural").summary() == "natural"
        assert Planner(width_bound=2).plan("auto").summary() == "pebble(k=2, trusted)"
        assert Planner(known_width=lambda: 1).plan("auto").summary() == "pebble(k=1, certified)"


class TestEngineAgreement:
    """Regression: `contains` and `resolve_method` run through one planner,
    so they must agree on every method × width-bound combination."""

    METHODS = ("auto", "naive", "natural", "pebble")
    WIDTH_BOUNDS = (None, 1, 2)
    WIDTHS = (None, 2)

    @pytest.fixture(scope="class")
    def workload(self):
        forest = fk_forest(2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=3)
        queries = sorted(
            Engine(forest=forest).solutions(graph, method="natural"), key=repr
        )[:3]
        assert queries, "workload generated no membership queries"
        return forest, graph, queries

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("width_bound", WIDTH_BOUNDS)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_contains_matches_resolved_plan(self, workload, method, width_bound, width):
        forest, graph, queries = workload
        engine = Engine(forest=forest, width_bound=width_bound)
        resolved_method, resolved_width = engine.resolve_method(method, width)
        plan = engine.plan(method, width)
        assert (plan.strategy, plan.width) == (resolved_method, resolved_width)
        for mu in queries:
            assert engine.contains(graph, mu, method=method, width=width) == engine.contains(
                graph, mu, method=resolved_method, width=resolved_width
            )

    def test_auto_upgrades_after_width_computation(self, workload):
        forest, graph, queries = workload
        engine = Engine(forest=forest)
        assert engine.resolve_method("auto") == ("natural", None)
        before = [engine.contains(graph, mu, method="auto") for mu in queries]
        engine.domination_width()
        assert engine.resolve_method("auto") == ("pebble", 1)
        # dw(F_2) = 1 certifies the pebble run, so the answers are unchanged.
        assert [engine.contains(graph, mu, method="auto") for mu in queries] == before


class TestExplainSnapshots:
    def test_uncertified_bound(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        assert engine.explain("auto") == (
            "requested method : auto\n"
            "chosen strategy  : pebble — Theorem 1: natural evaluation with the "
            "existential (k+1)-pebble relaxation\n"
            "width bound      : k = 1 (trusted: supplied bound, not verified)\n"
            "pebble game      : existential 2-pebble game\n"
            "rationale        : the engine's width_bound declares dw(P) <= 1, so "
            "the polynomial pebble relaxation runs with k = 1; it is exact if the "
            "bound holds (dw(P) <= 1), and sound for every input"
        )

    def test_certified_bound(self):
        engine = Engine(forest=fk_forest(2))
        engine.domination_width()
        assert engine.explain("auto") == (
            "requested method : auto\n"
            "chosen strategy  : pebble — Theorem 1: natural evaluation with the "
            "existential (k+1)-pebble relaxation\n"
            "width bound      : k = 1 (certified: computed domination width of the pattern)\n"
            "pebble game      : existential 2-pebble game\n"
            "rationale        : the domination width dw(P) = 1 was already "
            "computed, so the polynomial pebble relaxation runs with k = 1; the "
            "algorithm is exact (Theorem 1)"
        )

    def test_natural_fallback(self):
        engine = Engine(forest=fk_forest(2))
        assert engine.explain("auto") == (
            "requested method : auto\n"
            "chosen strategy  : natural — exact wdPF evaluation (Lemma 1) with "
            "full homomorphism child tests\n"
            "width bound      : n/a (width-free strategy)\n"
            "rationale        : no width bound was supplied and the domination "
            "width has not been computed; resolving to the exact natural "
            "algorithm instead of paying for a width computation"
        )
