"""Unit tests for the planning layer (Strategy registry, Plan, Planner,
cost model, plan memoization)."""

import pytest

from repro.evaluation import CostModel, Engine, PatternStats, Planner, method_names, strategy_for
from repro.exceptions import EvaluationError
from repro.patterns.build import wdpf
from repro.rdf.generators import random_graph
from repro.sparql.parser import parse_pattern
from repro.workloads.families import fk_data_graph, fk_forest


class TestRegistry:
    def test_method_names(self):
        assert method_names() == ("auto", "naive", "natural", "pebble")

    def test_strategy_for_known(self):
        for name in ("naive", "natural", "pebble"):
            assert strategy_for(name).name == name

    def test_strategy_for_unknown(self):
        with pytest.raises(EvaluationError):
            strategy_for("quantum")

    def test_enumeration_support_flags(self):
        assert strategy_for("naive").supports_enumeration
        assert strategy_for("natural").supports_enumeration
        assert not strategy_for("pebble").supports_enumeration


class TestPlanner:
    def test_explicit_methods(self):
        planner = Planner()
        assert planner.plan("naive").strategy == "naive"
        assert planner.plan("natural").strategy == "natural"
        for plan in (planner.plan("naive"), planner.plan("natural")):
            assert plan.width is None
            assert not plan.certified

    def test_pebble_per_call_width_wins_over_bound(self):
        planner = Planner(width_bound=1)
        plan = planner.plan("pebble", width=3)
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 3, False)

    def test_pebble_without_any_bound_needs_oracle(self):
        with pytest.raises(EvaluationError):
            Planner().plan("pebble")

    def test_pebble_oracle_certifies(self):
        planner = Planner(width_oracle=lambda: 2)
        plan = planner.plan("pebble")
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 2, True)

    def test_auto_prefers_free_bound(self):
        plan = Planner(width_bound=1).plan("auto")
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 1, False)

    def test_auto_uses_known_width_but_never_computes(self):
        def exploding_oracle():
            raise AssertionError("auto must not compute the domination width")

        planner = Planner(known_width=lambda: None, width_oracle=exploding_oracle)
        assert planner.plan("auto").strategy == "natural"
        planner = Planner(known_width=lambda: 2, width_oracle=exploding_oracle)
        plan = planner.plan("auto")
        assert (plan.strategy, plan.width, plan.certified) == ("pebble", 2, True)

    def test_invalid_width_bound(self):
        with pytest.raises(EvaluationError):
            Planner(width_bound=0)

    def test_unknown_method(self):
        with pytest.raises(EvaluationError):
            Planner().plan("quantum")

    def test_enumeration_auto_is_natural(self):
        plan = Planner(width_bound=1).plan_enumeration("auto")
        assert plan.strategy == "natural"

    def test_enumeration_rejects_pebble(self):
        with pytest.raises(EvaluationError):
            Planner(width_bound=1).plan_enumeration("pebble")

    def test_plan_is_frozen(self):
        plan = Planner().plan("natural")
        with pytest.raises(AttributeError):
            plan.strategy = "naive"

    def test_summary(self):
        assert Planner().plan("natural").summary() == "natural"
        assert Planner(width_bound=2).plan("auto").summary() == "pebble(k=2, trusted)"
        assert Planner(known_width=lambda: 1).plan("auto").summary() == "pebble(k=1, certified)"


class TestEngineAgreement:
    """Regression: `contains` and `resolve_method` run through one planner,
    so they must agree on every method × width-bound combination."""

    METHODS = ("auto", "naive", "natural", "pebble")
    WIDTH_BOUNDS = (None, 1, 2)
    WIDTHS = (None, 2)

    @pytest.fixture(scope="class")
    def workload(self):
        forest = fk_forest(2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=3)
        queries = sorted(
            Engine(forest=forest).solutions(graph, method="natural"), key=repr
        )[:3]
        assert queries, "workload generated no membership queries"
        return forest, graph, queries

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("width_bound", WIDTH_BOUNDS)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_contains_matches_resolved_plan(self, workload, method, width_bound, width):
        forest, graph, queries = workload
        engine = Engine(forest=forest, width_bound=width_bound)
        resolved_method, resolved_width = engine.resolve_method(method, width)
        plan = engine.plan(method, width)
        assert (plan.strategy, plan.width) == (resolved_method, resolved_width)
        for mu in queries:
            assert engine.contains(graph, mu, method=method, width=width) == engine.contains(
                graph, mu, method=resolved_method, width=resolved_width
            )

    def test_auto_upgrades_after_width_computation(self, workload):
        forest, graph, queries = workload
        engine = Engine(forest=forest)
        assert engine.resolve_method("auto") == ("natural", None)
        before = [engine.contains(graph, mu, method="auto") for mu in queries]
        engine.domination_width()
        assert engine.resolve_method("auto") == ("pebble", 1)
        # dw(F_2) = 1 certifies the pebble run, so the answers are unchanged.
        assert [engine.contains(graph, mu, method="auto") for mu in queries] == before


class TestPatternStats:
    def test_single_node_pattern(self):
        stats = PatternStats.of(wdpf(parse_pattern("(?x p ?y)")))
        assert (stats.trees, stats.nodes, stats.opt_children) == (1, 1, 0)
        assert stats.variables == 2
        assert stats.max_new_vars == 2
        assert stats.max_branch_vars == 2
        assert stats.subtree_bound == 1.0

    def test_opt_children_counted(self):
        pattern = parse_pattern("(((?x p ?y) OPT (?y q ?z)) OPT (?x r ?w))")
        stats = PatternStats.of(wdpf(pattern))
        assert stats.opt_children == 2
        # Two independent OPT children of the root: {root}, {root,a},
        # {root,b}, {root,a,b}.
        assert stats.subtree_bound == 4.0
        # Each child introduces exactly one fresh variable over the root.
        assert stats.max_new_vars == 2  # the root itself introduces ?x ?y
        assert stats.max_branch_vars == 3

    def test_engine_memoizes_stats(self):
        engine = Engine(parse_pattern("((?x p ?y) OPT (?y q ?z))"))
        assert engine.pattern_stats() is engine.pattern_stats()


class TestCostModel:
    def _stats(self, **overrides):
        base = dict(
            trees=1,
            nodes=3,
            opt_children=2,
            triples=3,
            variables=4,
            max_new_vars=2,
            max_branch_vars=4,
            subtree_bound=4.0,
        )
        base.update(overrides)
        return PatternStats(**base)

    def test_pebble_inadmissible_without_width(self):
        estimate = CostModel().estimate(self._stats(), 100, 20, None)
        assert estimate.cost_of("pebble") is None
        assert estimate.cheapest() in ("naive", "natural")

    def test_pebble_inadmissible_for_enumeration(self):
        estimate = CostModel().estimate(self._stats(), 100, 20, 1, task="enumeration")
        assert estimate.cost_of("pebble") is None
        assert set(name for name, _ in estimate.costs) == {"naive", "natural"}

    def test_membership_prefers_pebble_under_bounded_width(self):
        # Many fresh variables per child: the n^new_vars child search dwarfs
        # the d^(k+1) pebble game (the Theorem 1 regime).
        stats = self._stats(max_new_vars=5, max_branch_vars=6)
        estimate = CostModel().estimate(stats, 1000, 100, 1)
        assert estimate.cheapest() == "pebble"

    def test_enumeration_naive_wins_on_wide_flat_patterns(self):
        # 2^20 subtrees: natural enumeration explodes, bottom-up naive does
        # one pass per node.
        stats = self._stats(nodes=21, opt_children=20, subtree_bound=2.0**20)
        estimate = CostModel().estimate(stats, 50, 15, None, task="enumeration")
        assert estimate.cheapest() == "naive"

    def test_enumeration_natural_wins_on_deep_chains(self):
        # A chain accumulates variables: the naive materialisation pays
        # n^branch_vars while natural only ever searches fresh variables.
        stats = self._stats(
            nodes=5, opt_children=4, subtree_bound=5.0, max_new_vars=1, max_branch_vars=6
        )
        estimate = CostModel().estimate(stats, 50, 15, None, task="enumeration")
        assert estimate.cheapest() == "natural"

    def test_ties_break_toward_preference_order(self):
        class FlatModel(CostModel):
            def estimate(self, pattern, graph_triples, graph_domain, width, task="membership"):
                estimate = super().estimate(pattern, graph_triples, graph_domain, width, task)
                flat = tuple((name, 1.0) for name, _ in estimate.costs)
                return type(estimate)(
                    task=estimate.task,
                    costs=flat,
                    graph_triples=estimate.graph_triples,
                    graph_domain=estimate.graph_domain,
                    pattern_nodes=estimate.pattern_nodes,
                    opt_children=estimate.opt_children,
                )

        stats = lambda: self._stats()  # noqa: E731
        graph = random_graph(6, 20, seed=1)
        # Membership with a free bound: PR 3 chose pebble; so does a tie.
        tied = Planner(width_bound=1, pattern_stats=stats, cost_model=FlatModel())
        assert tied.plan("auto", graph=graph).strategy == "pebble"
        # Membership without any bound: PR 3 chose natural; so does a tie.
        unbound = Planner(pattern_stats=stats, cost_model=FlatModel())
        assert unbound.plan("auto", graph=graph).strategy == "natural"
        # Enumeration: PR 3 always chose natural; so does a tie.
        assert tied.plan_enumeration("auto", graph=graph).strategy == "natural"

    def test_unknown_task_rejected(self):
        with pytest.raises(EvaluationError):
            CostModel().estimate(self._stats(), 10, 5, None, task="sorting")

    def test_graph_aware_auto_never_picks_pebble_without_bound(self):
        engine = Engine(forest=fk_forest(2))
        graph = fk_data_graph(5, 25, clique_size=2, seed=3)
        plan = engine.plan("auto", graph=graph)
        assert plan.strategy in ("naive", "natural")
        assert plan.cost is not None
        assert plan.cost.cost_of("pebble") is None

    def test_graph_aware_plan_carries_estimate_in_explain(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        graph = fk_data_graph(5, 25, clique_size=2, seed=3)
        explained = engine.explain("auto", graph=graph)
        assert "cost estimate    :" in explained
        assert "cost inputs      : |G| = " in explained

    def test_resolve_method_with_graph_matches_graph_aware_plan(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        graph = fk_data_graph(5, 25, clique_size=2, seed=3)
        plan = engine.plan("auto", graph=graph)
        assert engine.resolve_method("auto", graph=graph) == (plan.strategy, plan.width)

    def test_graph_aware_auto_answers_match_graph_free(self):
        forest = fk_forest(2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=3)
        queries = sorted(
            Engine(forest=forest).solutions(graph, method="natural"), key=repr
        )[:3]
        engine = Engine(forest=forest, width_bound=1)
        for mu in queries:
            assert engine.contains(graph, mu, method="auto") == engine.contains(
                graph, mu, method="natural"
            )


class TestPlanMemoization:
    def test_graph_free_plans_are_shared(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        assert engine.plan("auto") is engine.plan("auto")
        assert engine.plan("natural") is engine.plan("natural")
        assert engine.plan("pebble", width=2) is engine.plan("pebble", width=2)
        assert engine.plan("auto") is not engine.plan("natural")

    def test_graph_aware_plans_are_shared_per_graph_stats(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        graph = fk_data_graph(5, 25, clique_size=2, seed=3)
        assert engine.plan("auto", graph=graph) is engine.plan("auto", graph=graph)

    def test_memo_invalidated_by_width_computation(self):
        engine = Engine(forest=fk_forest(2))
        before = engine.plan("auto")
        assert before.strategy == "natural"
        engine.domination_width()
        after = engine.plan("auto")
        assert after.strategy == "pebble" and after.certified

    def test_memo_invalidated_by_graph_mutation(self):
        from repro.rdf import Triple

        engine = Engine(parse_pattern("((?x p ?y) OPT (?y q ?z))"))
        graph = random_graph(6, 20, seed=4)
        first = engine.plan("auto", graph=graph)
        graph.add(Triple.of("urn:fresh-node", "urn:fresh-pred", "urn:fresh-object"))
        second = engine.plan("auto", graph=graph)
        assert second is not first  # |G| changed, so the key changed

    def test_enumeration_plans_memoized(self):
        engine = Engine(forest=fk_forest(2))
        planner = engine.planner
        assert planner.plan_enumeration("auto") is planner.plan_enumeration("auto")


class TestExplainSnapshots:
    def test_uncertified_bound(self):
        engine = Engine(forest=fk_forest(2), width_bound=1)
        assert engine.explain("auto") == (
            "requested method : auto\n"
            "chosen strategy  : pebble — Theorem 1: natural evaluation with the "
            "existential (k+1)-pebble relaxation\n"
            "width bound      : k = 1 (trusted: supplied bound, not verified)\n"
            "pebble game      : existential 2-pebble game\n"
            "rationale        : the engine's width_bound declares dw(P) <= 1, so "
            "the polynomial pebble relaxation runs with k = 1; it is exact if the "
            "bound holds (dw(P) <= 1), and sound for every input"
        )

    def test_certified_bound(self):
        engine = Engine(forest=fk_forest(2))
        engine.domination_width()
        assert engine.explain("auto") == (
            "requested method : auto\n"
            "chosen strategy  : pebble — Theorem 1: natural evaluation with the "
            "existential (k+1)-pebble relaxation\n"
            "width bound      : k = 1 (certified: computed domination width of the pattern)\n"
            "pebble game      : existential 2-pebble game\n"
            "rationale        : the domination width dw(P) = 1 was already "
            "computed, so the polynomial pebble relaxation runs with k = 1; the "
            "algorithm is exact (Theorem 1)"
        )

    def test_natural_fallback(self):
        engine = Engine(forest=fk_forest(2))
        assert engine.explain("auto") == (
            "requested method : auto\n"
            "chosen strategy  : natural — exact wdPF evaluation (Lemma 1) with "
            "full homomorphism child tests\n"
            "width bound      : n/a (width-free strategy)\n"
            "rationale        : no width bound was supplied and the domination "
            "width has not been computed; resolving to the exact natural "
            "algorithm instead of paying for a width computation"
        )
