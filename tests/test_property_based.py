"""Property-based tests (hypothesis) for the core data structures and the
paper's key invariants."""

import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.evaluation import Session, evaluate_pattern, forest_contains, forest_contains_pebble, forest_solutions
from repro.hom import GeneralizedTGraph, TGraph, core_of, ctw, has_homomorphism, is_core, maps_to, tw
from repro.patterns import WDPatternForest, wdpf
from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX
from repro.rdf.terms import IRI, Variable
from repro.sparql.mappings import Mapping
from repro.width import branch_treewidth, domination_width
from repro.workloads.random_patterns import random_wd_pattern, random_wd_tree


# --- strategies -----------------------------------------------------------------

_PREDICATES = [EX.term("p"), EX.term("q"), EX.term("r")]
_NODES = [EX.term(f"n{i}") for i in range(4)]
_VARIABLES = [Variable(name) for name in ("a", "b", "c", "d")]


@st.composite
def rdf_graphs(draw, max_triples: int = 12) -> RDFGraph:
    triples = draw(
        st.lists(
            st.tuples(st.sampled_from(_NODES), st.sampled_from(_PREDICATES), st.sampled_from(_NODES)),
            max_size=max_triples,
        )
    )
    return RDFGraph(Triple(s, p, o) for s, p, o in triples)


@st.composite
def tgraphs(draw, max_triples: int = 5) -> TGraph:
    terms = st.sampled_from(_VARIABLES + _NODES[:2])
    triples = draw(
        st.lists(
            st.tuples(terms, st.sampled_from(_PREDICATES), terms),
            min_size=1,
            max_size=max_triples,
        )
    )
    return TGraph(Triple(s, p, o) for s, p, o in triples)


@st.composite
def generalized_tgraphs(draw) -> GeneralizedTGraph:
    tgraph = draw(tgraphs())
    variables = sorted(tgraph.variables(), key=lambda v: v.name)
    if variables:
        distinguished = draw(st.sets(st.sampled_from(variables), max_size=len(variables)))
    else:
        distinguished = set()
    return GeneralizedTGraph(tgraph, distinguished)


# --- homomorphism / core invariants --------------------------------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(generalized_tgraphs())
def test_core_is_equivalent_subgraph_and_idempotent(gtgraph):
    core = core_of(gtgraph)
    assert core.tgraph.issubset(gtgraph.tgraph)
    assert is_core(core)
    assert maps_to(gtgraph, core) and maps_to(core, gtgraph)
    assert core_of(core) == core


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(generalized_tgraphs())
def test_ctw_never_exceeds_tw(gtgraph):
    assert 1 <= ctw(gtgraph) <= max(tw(gtgraph), 1)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tgraphs(), rdf_graphs())
def test_homomorphism_is_preserved_by_target_extension(source, graph):
    """If S → G then S → G ∪ extra triples (monotonicity of homomorphisms)."""
    if has_homomorphism(source, graph):
        bigger = graph.copy().add(Triple(EX.term("extra1"), _PREDICATES[0], EX.term("extra2")))
        assert has_homomorphism(source, bigger)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tgraphs())
def test_every_tgraph_maps_into_its_own_freezing(source):
    from repro.hom import freeze_tgraph

    frozen, _ = freeze_tgraph(source)
    assert has_homomorphism(source, frozen)


# --- pebble game invariants ------------------------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tgraphs(max_triples=4), rdf_graphs(max_triples=10))
def test_pebble_game_relaxes_homomorphism(source, graph):
    """(S, ∅) → G implies (S, ∅) →_k G for k = 2 (property (2) of the paper)."""
    from repro.pebble import pebble_game_winner

    gtgraph = GeneralizedTGraph(source, frozenset())
    if has_homomorphism(source, graph):
        assert pebble_game_winner(gtgraph, graph, Mapping.EMPTY, 2)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tgraphs(max_triples=4), rdf_graphs(max_triples=10))
def test_pebble_game_exact_on_low_width(source, graph):
    """Proposition 3: for ctw <= 1 the 2-pebble game equals the homomorphism test."""
    from repro.pebble import pebble_game_winner

    gtgraph = GeneralizedTGraph(source, frozenset())
    if ctw(gtgraph) <= 1:
        assert pebble_game_winner(gtgraph, graph, Mapping.EMPTY, 2) == has_homomorphism(
            source, graph
        )


# --- semantics invariants -----------------------------------------------------------------


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), rdf_graphs())
def test_wdpf_semantics_matches_compositional_semantics(seed, graph):
    """⟦P⟧G computed via Lemma 1 equals the compositional semantics on random
    well-designed patterns."""
    pattern = random_wd_pattern(num_nodes=3, seed=seed)
    forest = wdpf(pattern)
    assert forest_solutions(forest, graph) == evaluate_pattern(pattern, graph)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), rdf_graphs())
def test_pebble_algorithm_sound_and_complete_at_true_width(seed, graph):
    """Theorem 1 on random UNION-free patterns: with k = dw(P) the pebble
    algorithm decides membership exactly."""
    tree = random_wd_tree(num_nodes=3, seed=seed)
    forest = WDPatternForest([tree])
    width = domination_width(forest)
    solutions = forest_solutions(forest, graph)
    # every true solution is accepted
    for mu in list(solutions)[:4]:
        assert forest_contains_pebble(forest, graph, mu, width)
    # a perturbed non-solution is rejected
    for mu in list(solutions)[:2]:
        bindings = mu.as_dict()
        if bindings:
            first = sorted(bindings, key=lambda v: v.name)[0]
            bindings[first] = IRI("http://example.org/__nowhere__")
            candidate = Mapping(bindings)
            if candidate not in solutions:
                assert not forest_contains_pebble(forest, graph, candidate, width)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_proposition5_on_random_trees(seed):
    """dw = bw for random UNION-free patterns."""
    tree = random_wd_tree(num_nodes=3, seed=seed)
    assert domination_width(WDPatternForest([tree])) == branch_treewidth(tree)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), rdf_graphs())
def test_natural_algorithm_matches_membership_in_solution_set(seed, graph):
    pattern = random_wd_pattern(num_nodes=2, seed=seed)
    forest = wdpf(pattern)
    solutions = evaluate_pattern(pattern, graph)
    for mu in list(solutions)[:4]:
        assert forest_contains(forest, graph, mu)


# --- cache thread-safety invariant (the query-service contract) ------------------


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), rdf_graphs())
def test_shared_warm_cache_under_threads_never_changes_a_verdict(seed, graph):
    """A shared EvaluationCache hit concurrently from worker threads (the
    query-service configuration: one warm session, unmutated graph) yields
    exactly the answers and verdicts a cold cache computes serially."""
    patterns = [random_wd_pattern(num_nodes=2, seed=seed + i) for i in range(3)]
    cold = [Session().solutions(pattern, graph) for pattern in patterns]
    candidates = [sorted(answers, key=repr)[:2] for answers in cold]

    shared = Session()
    shared.solutions(patterns[0], graph)  # pre-warm one cell: mixed hit/miss
    results = [[None] * len(patterns) for _ in range(4)]
    verdicts = [[None] * len(patterns) for _ in range(4)]

    def hammer(thread_index):
        for i, pattern in enumerate(patterns):
            results[thread_index][i] = shared.solutions(pattern, graph)
            verdicts[thread_index][i] = shared.check_many(
                pattern, graph, candidates[i]
            )

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)

    for thread_index in range(4):
        for i in range(len(patterns)):
            assert results[thread_index][i] == cold[i]
            assert verdicts[thread_index][i] == [True] * len(candidates[i])
