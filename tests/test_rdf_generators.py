"""Unit tests for the synthetic RDF graph generators."""

import networkx as nx
import pytest

from repro.rdf import TriplePattern
from repro.rdf.generators import (
    clique_graph,
    cycle_graph,
    from_networkx,
    grid_graph,
    path_graph,
    power_law_graph,
    random_graph,
    social_network_graph,
    star_graph,
    tree_graph,
)
from repro.rdf.namespace import EX, FOAF


class TestStructuredGraphs:
    def test_path_graph_size(self):
        assert len(path_graph(5)) == 5

    def test_path_graph_zero_length(self):
        assert len(path_graph(0)) == 0

    def test_cycle_graph_size_and_closure(self):
        g = cycle_graph(4)
        assert len(g) == 4
        # the cycle closes: some triple points back to node0
        assert any(t.object == EX.term("node0") for t in g)

    def test_cycle_rejects_zero(self):
        with pytest.raises(ValueError):
            cycle_graph(0)

    def test_clique_graph_edge_count(self):
        assert len(clique_graph(4)) == 12  # ordered pairs without self loops
        assert len(clique_graph(4, symmetric=False)) == 6

    def test_grid_graph_bidirectional(self):
        g = grid_graph(2, 2)
        assert len(g) == 8  # 4 undirected edges, both directions

    def test_star_graph(self):
        assert len(star_graph(7)) == 7

    def test_tree_graph_node_count(self):
        g = tree_graph(depth=2, branching=2)
        assert len(g) == 6  # 2 + 4 edges

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)
        with pytest.raises(ValueError):
            clique_graph(0)
        with pytest.raises(ValueError):
            tree_graph(1, 0)


class TestRandomGraphs:
    def test_random_graph_is_seeded(self):
        assert random_graph(10, 30, seed=5) == random_graph(10, 30, seed=5)

    def test_random_graph_respects_vocabulary(self):
        g = random_graph(5, 20, predicates=("p",), seed=1)
        assert g.predicates() == {EX.term("p")}

    def test_random_graph_rejects_empty(self):
        with pytest.raises(ValueError):
            random_graph(0, 5)

    def test_social_network_contains_foaf_properties(self):
        g = social_network_graph(12, seed=3)
        assert any(t.predicate == FOAF.knows for t in g)
        assert any(t.predicate == FOAF.name for t in g)

    def test_social_network_is_seeded(self):
        assert social_network_graph(10, seed=1) == social_network_graph(10, seed=1)

    def test_social_network_minimum_size(self):
        with pytest.raises(ValueError):
            social_network_graph(2)


class TestFromNetworkx:
    def test_undirected_graph_is_symmetric(self):
        g = from_networkx(nx.path_graph(3))
        pattern = TriplePattern.of("?x", EX.term("edge").value, "?y")
        assert len(list(g.matches(pattern))) == 4  # 2 edges, both directions

    def test_directed_graph_keeps_orientation(self):
        digraph = nx.DiGraph([(0, 1)])
        g = from_networkx(digraph, predicate="edge")
        assert len(g) == 1


class TestPowerLawGraphs:
    def test_power_law_is_seeded(self):
        assert power_law_graph(200, 600, seed=3) == power_law_graph(200, 600, seed=3)

    def test_power_law_seeds_differ(self):
        assert power_law_graph(200, 600, seed=3) != power_law_graph(200, 600, seed=4)

    def test_power_law_respects_vocabulary(self):
        g = power_law_graph(50, 200, predicates=("p",), seed=1)
        assert g.predicates() == {EX.term("p")}

    def test_power_law_degree_distribution_is_skewed(self):
        """The Zipf endpoints must produce hub nodes: the top degree has to
        dwarf the median degree (no uniform generator does this)."""
        from collections import Counter

        g = power_law_graph(500, 5000, seed=7)
        degree = Counter()
        for t in g:
            degree[t.subject] += 1
            degree[t.object] += 1
        ordered = sorted(degree.values())
        median = ordered[len(ordered) // 2]
        assert degree[EX.term("node0")] == max(degree.values())
        assert max(degree.values()) >= 10 * median

    def test_power_law_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            power_law_graph(0, 5)
        with pytest.raises(ValueError):
            power_law_graph(5, -1)
        with pytest.raises(ValueError):
            power_law_graph(5, 5, exponent=0.0)

    def test_scalable_generators_bulk_load_in_one_version_bump(self):
        assert power_law_graph(50, 200, seed=1).version == 1
        assert random_graph(10, 30, seed=5).version == 1
        assert social_network_graph(10, seed=1).version == 1
        assert from_networkx(nx.path_graph(3)).version == 1


@pytest.mark.slow
class TestLargeGraphSmoke:
    """Tier-2 smoke: a 10^5-triple power-law graph must load and answer one
    membership query through every evaluation engine."""

    def test_load_and_answer_membership_per_engine(self):
        from repro.evaluation import Session
        from repro.rdf.terms import Variable
        from repro.sparql import Mapping, parse_pattern

        g = power_law_graph(40_000, 175_000, exponent=1.1, seed=13)
        assert len(g) >= 100_000

        t = next(iter(g))
        pattern = parse_pattern(f"(?x <{t.predicate.value}> ?y)")
        x, y = Variable("x"), Variable("y")
        present = Mapping({x: t.subject, y: t.object})
        absent = Mapping({x: EX.term("nowhere"), y: t.object})
        session = Session()
        for method in ("natural", "pebble", "auto"):
            assert session.check(pattern, g, present, method=method) is True
            assert session.check(pattern, g, absent, method=method) is False
