"""Unit tests for repro.rdf.graph (the indexed RDF graph)."""

import pytest

from repro.exceptions import RDFError
from repro.rdf import RDFGraph, Triple, TriplePattern
from repro.rdf.namespace import EX
from repro.rdf.terms import IRI, Variable


class TestBasicOperations:
    def test_add_and_contains(self):
        g = RDFGraph()
        t = Triple.of("a", "p", "b")
        g.add(t)
        assert t in g
        assert len(g) == 1

    def test_add_is_idempotent(self):
        g = RDFGraph()
        t = Triple.of("a", "p", "b")
        g.add(t).add(t)
        assert len(g) == 1

    def test_rejects_non_ground_triples(self):
        g = RDFGraph()
        with pytest.raises(RDFError):
            g.add(TriplePattern.of("?x", "p", "b"))

    def test_rejects_non_triples(self):
        with pytest.raises(TypeError):
            RDFGraph().add(("a", "p", "b"))

    def test_from_tuples(self):
        g = RDFGraph.from_tuples([("a", "p", "b"), ("b", "p", "c")])
        assert len(g) == 2

    def test_discard(self):
        t = Triple.of("a", "p", "b")
        g = RDFGraph([t])
        g.discard(t)
        assert len(g) == 0
        assert list(g.matches(TriplePattern.of("?x", "p", "?y"))) == []

    def test_copy_is_independent(self):
        g = RDFGraph([Triple.of("a", "p", "b")])
        h = g.copy()
        h.add(Triple.of("c", "p", "d"))
        assert len(g) == 1 and len(h) == 2

    def test_union(self):
        g = RDFGraph([Triple.of("a", "p", "b")])
        h = RDFGraph([Triple.of("c", "p", "d")])
        assert len(g.union(h)) == 2

    def test_equality_and_hash(self):
        g = RDFGraph([Triple.of("a", "p", "b")])
        h = RDFGraph([Triple.of("a", "p", "b")])
        assert g == h
        assert hash(g) == hash(h)


class TestDomains:
    def test_domain_collects_all_positions(self, small_graph):
        domain = small_graph.domain()
        assert EX.a in domain and EX.p in domain and EX.d in domain

    def test_subjects_predicates_objects(self, small_graph):
        assert EX.a in small_graph.subjects()
        assert EX.q in small_graph.predicates()
        assert EX.c in small_graph.objects()


class TestMatching:
    def test_fully_bound_pattern(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of(EX.a, EX.p, EX.b)))
        assert len(matches) == 1

    def test_predicate_bound_only(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of("?x", EX.p, "?y")))
        assert len(matches) == 2

    def test_subject_bound_only(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of(EX.b, "?p", "?o")))
        assert len(matches) == 2

    def test_unbound_pattern_returns_everything(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of("?s", "?p", "?o")))
        assert len(matches) == len(small_graph)

    def test_repeated_variable_requires_equality(self, small_graph):
        # only d --r--> d has subject == object
        matches = list(small_graph.matches(TriplePattern.of("?x", "?p", "?x")))
        assert len(matches) == 1
        assert matches[0].subject == EX.d

    def test_no_match(self, small_graph):
        assert list(small_graph.matches(TriplePattern.of(EX.d, EX.p, "?x"))) == []

    def test_solutions_bind_variables(self, small_graph):
        solutions = list(small_graph.solutions(TriplePattern.of("?x", EX.p, "?y")))
        assert {frozenset(s.items()) for s in solutions} == {
            frozenset({(Variable("x"), EX.a), (Variable("y"), EX.b)}),
            frozenset({(Variable("x"), EX.a), (Variable("y"), EX.c)}),
        }

    def test_solutions_for_ground_pattern(self, small_graph):
        solutions = list(small_graph.solutions(TriplePattern.of(EX.a, EX.p, EX.b)))
        assert solutions == [{}]

    def test_solutions_repeated_variable(self, small_graph):
        solutions = list(small_graph.solutions(TriplePattern.of("?x", EX.r, "?x")))
        assert solutions == [{Variable("x"): EX.d}]
