"""Unit tests for repro.rdf.graph (the indexed RDF graph)."""

import pytest

from repro.exceptions import RDFError
from repro.rdf import RDFGraph, Triple, TriplePattern
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable


class TestBasicOperations:
    def test_add_and_contains(self):
        g = RDFGraph()
        t = Triple.of("a", "p", "b")
        g.add(t)
        assert t in g
        assert len(g) == 1

    def test_add_is_idempotent(self):
        g = RDFGraph()
        t = Triple.of("a", "p", "b")
        g.add(t).add(t)
        assert len(g) == 1

    def test_rejects_non_ground_triples(self):
        g = RDFGraph()
        with pytest.raises(RDFError):
            g.add(TriplePattern.of("?x", "p", "b"))

    def test_rejects_non_triples(self):
        with pytest.raises(TypeError):
            RDFGraph().add(("a", "p", "b"))

    def test_from_tuples(self):
        g = RDFGraph.from_tuples([("a", "p", "b"), ("b", "p", "c")])
        assert len(g) == 2

    def test_discard(self):
        t = Triple.of("a", "p", "b")
        g = RDFGraph([t])
        g.discard(t)
        assert len(g) == 0
        assert list(g.matches(TriplePattern.of("?x", "p", "?y"))) == []

    def test_copy_is_independent(self):
        g = RDFGraph([Triple.of("a", "p", "b")])
        h = g.copy()
        h.add(Triple.of("c", "p", "d"))
        assert len(g) == 1 and len(h) == 2

    def test_union(self):
        g = RDFGraph([Triple.of("a", "p", "b")])
        h = RDFGraph([Triple.of("c", "p", "d")])
        assert len(g.union(h)) == 2

    def test_equality_and_hash(self):
        g = RDFGraph([Triple.of("a", "p", "b")])
        h = RDFGraph([Triple.of("a", "p", "b")])
        assert g == h
        assert hash(g) == hash(h)


class TestDomains:
    def test_domain_collects_all_positions(self, small_graph):
        domain = small_graph.domain()
        assert EX.a in domain and EX.p in domain and EX.d in domain

    def test_subjects_predicates_objects(self, small_graph):
        assert EX.a in small_graph.subjects()
        assert EX.q in small_graph.predicates()
        assert EX.c in small_graph.objects()


class TestMatching:
    def test_fully_bound_pattern(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of(EX.a, EX.p, EX.b)))
        assert len(matches) == 1

    def test_predicate_bound_only(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of("?x", EX.p, "?y")))
        assert len(matches) == 2

    def test_subject_bound_only(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of(EX.b, "?p", "?o")))
        assert len(matches) == 2

    def test_unbound_pattern_returns_everything(self, small_graph):
        matches = list(small_graph.matches(TriplePattern.of("?s", "?p", "?o")))
        assert len(matches) == len(small_graph)

    def test_repeated_variable_requires_equality(self, small_graph):
        # only d --r--> d has subject == object
        matches = list(small_graph.matches(TriplePattern.of("?x", "?p", "?x")))
        assert len(matches) == 1
        assert matches[0].subject == EX.d

    def test_no_match(self, small_graph):
        assert list(small_graph.matches(TriplePattern.of(EX.d, EX.p, "?x"))) == []

    def test_solutions_bind_variables(self, small_graph):
        solutions = list(small_graph.solutions(TriplePattern.of("?x", EX.p, "?y")))
        assert {frozenset(s.items()) for s in solutions} == {
            frozenset({(Variable("x"), EX.a), (Variable("y"), EX.b)}),
            frozenset({(Variable("x"), EX.a), (Variable("y"), EX.c)}),
        }

    def test_solutions_for_ground_pattern(self, small_graph):
        solutions = list(small_graph.solutions(TriplePattern.of(EX.a, EX.p, EX.b)))
        assert solutions == [{}]

    def test_solutions_repeated_variable(self, small_graph):
        solutions = list(small_graph.solutions(TriplePattern.of("?x", EX.r, "?x")))
        assert solutions == [{Variable("x"): EX.d}]


class TestVersionSemantics:
    """Pin the mutation-counter contract the evaluation caches key on:
    +1 per effective single mutation, +1 per effective *batch*."""

    def test_add_bumps_once_and_duplicates_do_not(self):
        g = RDFGraph()
        assert g.version == 0
        g.add(Triple.of("a", "p", "b"))
        assert g.version == 1
        g.add(Triple.of("a", "p", "b"))
        assert g.version == 1

    def test_add_all_bumps_once_per_batch(self):
        g = RDFGraph()
        g.add_all([Triple.of("a", "p", "b"), Triple.of("b", "p", "c"), Triple.of("c", "p", "d")])
        assert g.version == 1

    def test_constructor_is_one_bulk_mutation(self):
        g = RDFGraph([Triple.of("a", "p", "b"), Triple.of("b", "p", "c")])
        assert g.version == 1
        assert RDFGraph.from_triples([Triple.of("a", "p", "b")]).version == 1

    def test_mixed_batch_bumps_once(self):
        t = Triple.of("a", "p", "b")
        g = RDFGraph([t])
        g.add_all([t, Triple.of("b", "p", "c"), Triple.of("c", "p", "d")])
        assert g.version == 2

    def test_noop_mutations_do_not_bump(self):
        t = Triple.of("a", "p", "b")
        g = RDFGraph([t])
        version = g.version
        g.add_all([])
        g.add_all([t, t])
        g.discard(Triple.of("x", "y", "z"))
        assert g.version == version

    def test_discard_bumps(self):
        t = Triple.of("a", "p", "b")
        g = RDFGraph([t])
        version = g.version
        g.discard(t)
        assert g.version == version + 1

    def test_copy_and_pickle_preserve_the_version(self):
        import pickle

        g = RDFGraph([Triple.of("a", "p", "b")])
        g.add(Triple.of("b", "p", "c"))
        assert g.copy().version == g.version
        assert pickle.loads(pickle.dumps(g)).version == g.version

    def test_cache_invalidates_once_across_a_bulk_load(self):
        """Regression: a bulk load used to bump the version once per triple,
        invalidating warm per-graph cache entries N times over."""
        from repro.evaluation import EvaluationCache

        cache = EvaluationCache()
        g = RDFGraph([Triple.of("a", "p", "b")])
        index = cache.target_index(g)
        assert cache.target_index(g) is index
        g.add_all([Triple.of(f"n{i}", "p", f"n{i + 1}") for i in range(6)])
        invalidations = cache.statistics.invalidations
        fresh = cache.target_index(g)
        assert fresh is not index
        assert cache.statistics.invalidations == invalidations + 1
        assert cache.target_index(g) is fresh
