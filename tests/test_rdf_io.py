"""Unit tests for the N-Triples style reader/writer."""

import pytest

from repro.exceptions import ParseError
from repro.rdf import RDFGraph, Triple, load_graph, parse_ntriples, save_graph, serialize_ntriples
from repro.rdf.terms import IRI, Literal


SAMPLE = """
# a comment
<http://example.org/a> <http://example.org/p> <http://example.org/b> .
<http://example.org/a> <http://example.org/name> "Alice" .
<http://example.org/a> <http://example.org/label> "Bonjour"@fr .
<http://example.org/a> <http://example.org/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
"""


class TestParsing:
    def test_parses_iris_and_literals(self):
        triples = list(parse_ntriples(SAMPLE))
        assert len(triples) == 4
        objects = {t.object for t in triples}
        assert IRI("http://example.org/b") in objects
        assert Literal("Alice") in objects
        assert Literal("Bonjour", language="fr") in objects

    def test_datatyped_literal(self):
        triples = list(parse_ntriples(SAMPLE))
        typed = [t for t in triples if isinstance(t.object, Literal) and t.object.datatype]
        assert len(typed) == 1
        assert typed[0].object.datatype == IRI("http://www.w3.org/2001/XMLSchema#integer")

    def test_blank_lines_and_comments_skipped(self):
        assert list(parse_ntriples("\n# nothing here\n\n")) == []

    def test_malformed_line_raises(self):
        with pytest.raises(ParseError):
            list(parse_ntriples("<a> <b> ."))

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            list(parse_ntriples("<a> <b> <c> garbage"))


class TestRoundTrip:
    def test_serialize_parse_round_trip(self):
        graph = RDFGraph(parse_ntriples(SAMPLE))
        text = serialize_ntriples(graph)
        reparsed = RDFGraph(parse_ntriples(text))
        assert reparsed == graph

    def test_serialisation_is_sorted_and_deterministic(self):
        graph = RDFGraph(
            [Triple.of("http://e.org/b", "http://e.org/p", "http://e.org/c"),
             Triple.of("http://e.org/a", "http://e.org/p", "http://e.org/c")]
        )
        assert serialize_ntriples(graph) == serialize_ntriples(graph.copy())
        first_line = serialize_ntriples(graph).splitlines()[0]
        assert "<http://e.org/a>" in first_line

    def test_file_round_trip(self, tmp_path):
        graph = RDFGraph(parse_ntriples(SAMPLE))
        path = tmp_path / "data.nt"
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_escaping_quotes_and_newlines(self):
        graph = RDFGraph([Triple(IRI("s"), IRI("p"), Literal('say "hi"\nplease'))])
        text = serialize_ntriples(graph)
        assert RDFGraph(parse_ntriples(text)) == graph
