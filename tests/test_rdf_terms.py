"""Unit tests for repro.rdf.terms."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable, is_ground_term, term_sort_key


class TestIRI:
    def test_equality_by_value(self):
        assert IRI("http://example.org/a") == IRI("http://example.org/a")
        assert IRI("http://example.org/a") != IRI("http://example.org/b")

    def test_hashable(self):
        assert len({IRI("x"), IRI("x"), IRI("y")}) == 2

    def test_rejects_empty_value(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            IRI(42)

    def test_immutable(self):
        iri = IRI("http://example.org/a")
        with pytest.raises(AttributeError):
            iri.value = "other"

    def test_str_uses_angle_brackets(self):
        assert str(IRI("http://example.org/a")) == "<http://example.org/a>"

    def test_is_ground(self):
        assert IRI("a").is_ground()
        assert not IRI("a").is_variable()

    def test_ordering(self):
        assert IRI("a") < IRI("b")


class TestLiteral:
    def test_plain_literal_equality(self):
        assert Literal("hello") == Literal("hello")
        assert Literal("hello") != Literal("world")

    def test_language_and_datatype_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=IRI("http://www.w3.org/2001/XMLSchema#string"), language="en")

    def test_language_tag_distinguishes(self):
        assert Literal("chat", language="en") != Literal("chat", language="fr")

    def test_datatype_distinguishes(self):
        integer = IRI("http://www.w3.org/2001/XMLSchema#integer")
        assert Literal("1", datatype=integer) != Literal("1")

    def test_str_forms(self):
        assert str(Literal("x")) == '"x"'
        assert str(Literal("x", language="en")) == '"x"@en'
        assert "^^" in str(Literal("1", datatype=IRI("http://example.org/int")))

    def test_is_ground(self):
        assert Literal("x").is_ground()


class TestVariable:
    def test_question_mark_is_stripped(self):
        assert Variable("?x") == Variable("x")
        assert Variable("$x") == Variable("x")

    def test_str_adds_question_mark(self):
        assert str(Variable("x")) == "?x"

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")
        with pytest.raises(ValueError):
            Variable("1abc")
        with pytest.raises(ValueError):
            Variable("a b")

    def test_is_variable(self):
        assert Variable("x").is_variable()
        assert not Variable("x").is_ground()

    def test_disjoint_from_iri(self):
        assert Variable("x") != IRI("x")
        assert hash(Variable("x")) != hash(IRI("x"))

    def test_ordering(self):
        assert Variable("a") < Variable("b")


class TestHelpers:
    def test_is_ground_term(self):
        assert is_ground_term(IRI("a"))
        assert is_ground_term(Literal("a"))
        assert not is_ground_term(Variable("a"))

    def test_sort_key_orders_variables_first(self):
        terms = [IRI("z"), Variable("a"), Literal("m")]
        ordered = sorted(terms, key=term_sort_key)
        assert isinstance(ordered[0], Variable)
        assert isinstance(ordered[1], IRI)
        assert isinstance(ordered[2], Literal)

    def test_sort_key_rejects_non_terms(self):
        with pytest.raises(TypeError):
            term_sort_key("not a term")
