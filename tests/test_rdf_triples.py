"""Unit tests for repro.rdf.triples."""

import pytest

from repro.exceptions import RDFError
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern, coerce_term, pattern, triple, variables_of


class TestCoerceTerm:
    def test_question_mark_string_becomes_variable(self):
        assert coerce_term("?x") == Variable("x")

    def test_plain_string_becomes_iri(self):
        assert coerce_term("http://example.org/p") == IRI("http://example.org/p")

    def test_terms_pass_through(self):
        term = Literal("42")
        assert coerce_term(term) is term

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            coerce_term(3.14)


class TestTriplePattern:
    def test_of_builds_from_strings(self):
        t = TriplePattern.of("?x", "p", "?y")
        assert t.subject == Variable("x")
        assert t.predicate == IRI("p")
        assert t.object == Variable("y")

    def test_variables_and_constants(self):
        t = TriplePattern.of("?x", "p", "o")
        assert t.variables() == {Variable("x")}
        assert t.constants() == {IRI("p"), IRI("o")}

    def test_is_ground(self):
        assert TriplePattern.of("s", "p", "o").is_ground()
        assert not TriplePattern.of("?s", "p", "o").is_ground()

    def test_equality_and_hash(self):
        assert TriplePattern.of("?x", "p", "?y") == TriplePattern.of("?x", "p", "?y")
        assert len({TriplePattern.of("?x", "p", "?y"), TriplePattern.of("?x", "p", "?y")}) == 1

    def test_immutable(self):
        t = TriplePattern.of("?x", "p", "?y")
        with pytest.raises(AttributeError):
            t.subject = IRI("a")

    def test_iteration_order(self):
        t = TriplePattern.of("s", "p", "o")
        assert [term.value for term in t] == ["s", "p", "o"]

    def test_substitute_partial(self):
        t = TriplePattern.of("?x", "p", "?y")
        result = t.substitute({Variable("x"): IRI("a")})
        assert result == TriplePattern.of("a", "p", "?y")

    def test_substitute_to_variable(self):
        t = TriplePattern.of("?x", "p", "?y")
        result = t.substitute({Variable("x"): Variable("z")})
        assert result.variables() == {Variable("z"), Variable("y")}

    def test_apply_requires_full_coverage(self):
        t = TriplePattern.of("?x", "p", "?y")
        with pytest.raises(RDFError):
            t.apply({Variable("x"): IRI("a")})

    def test_apply_produces_ground_triple(self):
        t = TriplePattern.of("?x", "p", "?y")
        result = t.apply({Variable("x"): IRI("a"), Variable("y"): IRI("b")})
        assert result.is_ground()
        assert result == TriplePattern.of("a", "p", "b")

    def test_rename(self):
        t = TriplePattern.of("?x", "p", "?x")
        renamed = t.rename({Variable("x"): Variable("z")})
        assert renamed == TriplePattern.of("?z", "p", "?z")

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            TriplePattern("a", IRI("p"), IRI("b"))


class TestConstructors:
    def test_triple_requires_groundness(self):
        with pytest.raises(RDFError):
            triple("?x", "p", "o")
        assert triple("s", "p", "o").is_ground()

    def test_pattern_allows_variables(self):
        assert pattern("?x", "p", "?y").variables() == {Variable("x"), Variable("y")}

    def test_triple_is_alias_for_pattern_class(self):
        assert Triple is TriplePattern

    def test_variables_of(self):
        ts = [pattern("?x", "p", "?y"), pattern("?y", "q", "?z")]
        assert variables_of(ts) == {Variable("x"), Variable("y"), Variable("z")}
