"""Unit tests for grids and minor maps."""

import networkx as nx
import pytest

from repro.exceptions import ReductionError
from repro.reductions import (
    extend_minor_map_onto,
    find_grid_minor_map,
    grid_graph,
    is_minor_map,
    minor_map_by_monomorphism,
    minor_map_into_clique,
)


class TestGridGraph:
    def test_dimensions(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_single_vertex(self):
        g = grid_graph(1, 1)
        assert g.number_of_nodes() == 1 and g.number_of_edges() == 0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_graph(0, 2)


class TestMinorMaps:
    def test_identity_map_on_grid(self):
        grid = grid_graph(2, 3)
        gamma = {v: frozenset({v}) for v in grid.nodes()}
        assert is_minor_map(grid, grid, gamma)

    def test_empty_branch_set_rejected(self):
        grid = grid_graph(1, 2)
        gamma = {(1, 1): frozenset(), (1, 2): frozenset({(1, 2)})}
        assert not is_minor_map(grid, grid, gamma)

    def test_overlapping_branch_sets_rejected(self):
        grid = grid_graph(1, 2)
        gamma = {(1, 1): frozenset({(1, 1)}), (1, 2): frozenset({(1, 1)})}
        assert not is_minor_map(grid, grid, gamma)

    def test_missing_edge_rejected(self):
        grid = grid_graph(1, 2)
        host = nx.Graph()
        host.add_nodes_from(["a", "b"])
        gamma = {(1, 1): frozenset({"a"}), (1, 2): frozenset({"b"})}
        assert not is_minor_map(grid, host, gamma)

    def test_map_into_clique(self):
        grid = grid_graph(2, 3)
        host = nx.complete_graph(6)
        gamma = minor_map_into_clique(2, 3, list(host.nodes()))
        assert is_minor_map(grid, host, gamma)

    def test_map_into_too_small_clique_rejected(self):
        with pytest.raises(ReductionError):
            minor_map_into_clique(2, 3, list(range(5)))

    def test_monomorphism_map(self):
        grid = grid_graph(2, 2)
        host = nx.complete_graph(5)
        gamma = minor_map_by_monomorphism(grid, host)
        assert gamma is not None
        assert is_minor_map(grid, host, gamma)

    def test_monomorphism_map_none_when_impossible(self):
        grid = grid_graph(2, 2)
        host = nx.path_graph(3)
        assert minor_map_by_monomorphism(grid, host) is None


class TestExtendOnto:
    def test_extension_covers_component(self):
        grid = grid_graph(1, 2)
        host = nx.path_graph(5)  # 0-1-2-3-4
        gamma = {(1, 1): frozenset({1}), (1, 2): frozenset({2})}
        extended = extend_minor_map_onto(gamma, host)
        covered = set().union(*extended.values())
        assert covered == set(host.nodes())
        assert is_minor_map(grid, host, extended)

    def test_extension_preserves_connectivity_of_branch_sets(self):
        grid = grid_graph(1, 2)
        host = nx.cycle_graph(6)
        gamma = {(1, 1): frozenset({0}), (1, 2): frozenset({1})}
        extended = extend_minor_map_onto(gamma, host)
        for branch in extended.values():
            assert nx.is_connected(host.subgraph(branch))


class TestFindGridMinorMap:
    def test_in_clique_host(self):
        host = nx.complete_graph(7)
        gamma = find_grid_minor_map(2, 3, host)
        assert is_minor_map(grid_graph(2, 3), host, gamma)
        covered = set().union(*gamma.values())
        assert covered == set(host.nodes())  # onto

    def test_in_grid_host(self):
        host = nx.Graph()
        host.add_edges_from(grid_graph(3, 3).edges())
        gamma = find_grid_minor_map(2, 2, host)
        assert is_minor_map(grid_graph(2, 2), host, gamma)

    def test_failure_when_host_too_small(self):
        with pytest.raises(ReductionError):
            find_grid_minor_map(3, 3, nx.path_graph(4))
