"""Unit tests for the Lemma 2 construction and the Lemma 3 witness."""

import networkx as nx
import pytest

from repro.exceptions import ReductionError
from repro.hom import GeneralizedTGraph, maps_to
from repro.patterns import WDPatternForest
from repro.reductions import (
    clique_number_pairs,
    lemma2_construction,
    lemma3_witness,
)
from repro.workloads.clique_instances import has_clique_bruteforce, plant_clique, random_host_graph
from repro.workloads.families import fk_forest, hard_clique_tree, kk_tgraph


class TestCliqueNumberPairs:
    def test_bijection_size(self):
        assert len(clique_number_pairs(4)) == 6

    def test_pairs_are_sorted_and_distinct(self):
        pairs = clique_number_pairs(5)
        assert len(set(pairs)) == len(pairs)
        assert all(i < j for i, j in pairs)


@pytest.fixture(scope="module")
def witness_k2():
    """The Lemma 3 witness of the Q_2 family (core Gaifman graph = K_2)."""
    forest = WDPatternForest([hard_clique_tree(2)])
    return lemma3_witness(forest, 1)


@pytest.fixture(scope="module")
def witness_k3():
    """A witness wide enough for the k=3 reduction (Q_9, Gaifman graph K_9)."""
    forest = WDPatternForest([hard_clique_tree(9)])
    return lemma3_witness(forest, 3)


class TestLemma3:
    def test_witness_on_hard_family(self, witness_k3):
        assert witness_k3.width == 8
        assert "ctw" in witness_k3.describe()

    def test_witness_minimality_trivial_on_singleton_gtg(self, witness_k2):
        # The GtG of the root subtree of Q_k is a singleton, so minimality is immediate.
        assert witness_k2.width >= 1

    def test_no_witness_on_narrow_forest(self):
        forest = fk_forest(3)  # dw = 1
        with pytest.raises(ReductionError):
            lemma3_witness(forest, 2)

    def test_threshold_validation(self):
        with pytest.raises(ReductionError):
            lemma3_witness(fk_forest(2), 0)


class TestLemma2Conditions:
    """The four conditions of Lemma 2, on instances small enough to verify."""

    @pytest.mark.parametrize("planted", [False, True])
    def test_condition_three_k2(self, witness_k2, planted):
        host = random_host_graph(5, 0.3, seed=11 if planted else 13)
        if planted:
            host, _ = plant_clique(host, 2, seed=1)
        if host.number_of_edges() == 0:
            pytest.skip("degenerate host")
        result = lemma2_construction(witness_k2.gtgraph, host, 2)
        expected = has_clique_bruteforce(host, 2)
        assert maps_to(witness_k2.gtgraph, result.b) == expected

    @pytest.mark.parametrize("planted", [False, True])
    def test_condition_three_k3(self, witness_k3, planted):
        host = random_host_graph(5, 0.35, seed=21 if planted else 23)
        if planted:
            host, _ = plant_clique(host, 3, seed=2)
        result = lemma2_construction(witness_k3.gtgraph, host, 3)
        expected = has_clique_bruteforce(host, 3)
        assert maps_to(witness_k3.gtgraph, result.b) == expected

    def test_condition_one_distinguished_triples_kept(self, witness_k3):
        host, _ = plant_clique(random_host_graph(5, 0.3, seed=5), 3, seed=5)
        result = lemma2_construction(witness_k3.gtgraph, host, 3)
        for triple in witness_k3.gtgraph.triples():
            if triple.variables() <= witness_k3.gtgraph.distinguished:
                assert triple in result.b.triples()

    def test_condition_two_b_maps_back(self, witness_k3):
        host, _ = plant_clique(random_host_graph(5, 0.3, seed=6), 3, seed=6)
        result = lemma2_construction(witness_k3.gtgraph, host, 3)
        assert maps_to(result.b, witness_k3.gtgraph)

    def test_projection_is_a_homomorphism_witness(self, witness_k3):
        """The recorded projection Π maps B's fresh variables onto core variables."""
        host, _ = plant_clique(random_host_graph(4, 0.4, seed=7), 3, seed=7)
        result = lemma2_construction(witness_k3.gtgraph, host, 3)
        substitution = dict(result.projection)
        for triple in result.b.triples():
            assert triple.substitute(substitution) in result.core.triples()

    def test_rejects_k_less_than_two(self, witness_k2):
        with pytest.raises(ReductionError):
            lemma2_construction(witness_k2.gtgraph, nx.complete_graph(3), 1)

    def test_rejects_empty_host(self, witness_k2):
        with pytest.raises(ReductionError):
            lemma2_construction(witness_k2.gtgraph, nx.Graph(), 2)

    def test_rejects_edgeless_host(self, witness_k2):
        host = nx.Graph()
        host.add_nodes_from(range(4))
        with pytest.raises(ReductionError):
            lemma2_construction(witness_k2.gtgraph, host, 2)

    def test_rejects_narrow_gtgraph(self):
        narrow = GeneralizedTGraph.of(kk_tgraph(2), [])
        with pytest.raises(ReductionError):
            lemma2_construction(narrow, nx.complete_graph(4), 3)
