"""Unit tests for the end-to-end CLIQUE -> co-wdEVAL reduction (Theorem 2)."""

import networkx as nx
import pytest

from repro.patterns import WDPatternForest
from repro.reductions import (
    clique_reduction,
    minimum_family_index,
    solve_clique_via_wdeval,
)
from repro.workloads.clique_instances import (
    clique_instance,
    has_clique_bruteforce,
    plant_clique,
    random_host_graph,
)
from repro.workloads.families import hard_clique_tree


class TestFamilyIndex:
    def test_minimum_family_index_values(self):
        assert minimum_family_index(2) == 2
        assert minimum_family_index(3) == 9

    def test_index_grows(self):
        assert minimum_family_index(4) > minimum_family_index(3)


class TestReductionInstances:
    def test_instance_structure_k2(self):
        forest = WDPatternForest([hard_clique_tree(2)])
        host = nx.complete_graph(3)
        instance = clique_reduction(forest, host, 2)
        assert instance.mapping.domain() == instance.witness.gtgraph.distinguished
        assert len(instance.graph) == len(instance.lemma2.b.triples())

    def test_correctness_k2_positive(self):
        forest = WDPatternForest([hard_clique_tree(2)])
        host = nx.complete_graph(3)  # certainly has a 2-clique
        instance = clique_reduction(forest, host, 2)
        assert instance.co_wdeval_answer() is True

    def test_correctness_k3_both_answers(self):
        forest = WDPatternForest([hard_clique_tree(minimum_family_index(3))])
        yes_host, _ = plant_clique(random_host_graph(5, 0.2, seed=31), 3, seed=31)
        no_host = nx.star_graph(4)  # star: no triangle
        yes_instance = clique_reduction(forest, yes_host, 3)
        no_instance = clique_reduction(forest, no_host, 3)
        assert yes_instance.co_wdeval_answer() is True
        assert no_instance.co_wdeval_answer() is False


class TestSolveClique:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_k2_matches_bruteforce(self, seed):
        host = random_host_graph(6, 0.25, seed=seed)
        assert solve_clique_via_wdeval(host, 2) == has_clique_bruteforce(host, 2)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_k3_matches_bruteforce(self, seed):
        host, k = clique_instance(5, 3, edge_probability=0.3, planted=(seed % 2 == 0), seed=seed)
        assert solve_clique_via_wdeval(host, k) == has_clique_bruteforce(host, k)

    def test_trivial_k_values(self):
        host = nx.path_graph(3)
        assert solve_clique_via_wdeval(host, 1) is True
        assert solve_clique_via_wdeval(nx.Graph(), 1) is False


class TestCliqueInstanceGenerators:
    def test_planted_instance_has_clique(self):
        host, k = clique_instance(8, 4, planted=True, seed=9)
        assert has_clique_bruteforce(host, k)

    def test_plant_clique_members_form_clique(self):
        host, members = plant_clique(random_host_graph(8, 0.1, seed=2), 4, seed=2)
        sub = host.subgraph(members)
        assert sub.number_of_edges() == 6

    def test_plant_too_large_clique_rejected(self):
        with pytest.raises(ValueError):
            plant_clique(nx.path_graph(3), 5)

    def test_bruteforce_edge_cases(self):
        assert has_clique_bruteforce(nx.Graph(), 0)
        assert not has_clique_bruteforce(nx.Graph(), 1)
        assert has_clique_bruteforce(nx.path_graph(2), 2)
        assert not has_clique_bruteforce(nx.path_graph(3), 3)
