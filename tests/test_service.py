"""The query service end to end: differential concurrency, admission
control, deadlines, fault injection, and the socket protocol.

The centrepiece is the differential suite: a seeded mixed workload —
membership checks, enumerations, and *answer-affecting* graph mutations —
runs through a :class:`~repro.service.core.QueryService` at 8 worker
threads, and every response is verified against a fresh serial
:class:`~repro.evaluation.session.Session` on the graph **reconstructed at
the version the response reports**.  The reader/writer gate guarantees
each response is pinned to exactly one ``RDFGraph.version``, and every
update is built to bump the version deterministically, so the concurrent
run is checkable bit-for-bit no matter how the threads interleave.
"""

import json
import multiprocessing
import random
import socket
import threading
import time

import pytest

from repro.evaluation import FaultPlan, Session
from repro.exceptions import (
    DeadlineExceeded,
    ProtocolError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.rdf import RDFGraph, Triple
from repro.service import (
    QueryService,
    Request,
    Response,
    ServiceClient,
    ServiceServer,
)
from repro.service.protocol import mapping_to_wire
from repro.sparql import Mapping, parse_pattern

KNOWS_QUERY = "(?x knows ?y)"
OPT_QUERY = "((?x knows ?y) OPT (?y email ?e))"


def social_graph(n=12, removable=8):
    """A knows-ring with emails on even nodes, plus *removable* spare edges
    (``remN knows tgtN``) that the mutation workloads delete."""
    triples = [Triple.of(f"p{i}", "knows", f"p{(i + 1) % n}") for i in range(n)]
    triples += [Triple.of(f"p{i}", "email", f"m{i}") for i in range(0, n, 2)]
    triples += [Triple.of(f"rem{i}", "knows", f"tgt{i}") for i in range(removable)]
    return RDFGraph(triples)


def check_request(deadline=None):
    return Request(
        op="check",
        query=KNOWS_QUERY,
        mappings=[Mapping.of(x="p0", y="p1")],
        deadline=deadline,
    )


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# --- in-process basics --------------------------------------------------------


class TestServiceBasics:
    def test_round_trip_all_operations(self):
        graph = social_graph()
        with QueryService(graph) as service:
            assert service.check(KNOWS_QUERY, Mapping.of(x="p0", y="p1")) is True
            assert service.check(KNOWS_QUERY, Mapping.of(x="p0", y="p5")) is False
            verdicts = service.check(
                KNOWS_QUERY,
                [Mapping.of(x=f"p{i}", y=f"p{i + 1}") for i in range(3)],
            )
            assert verdicts == [True, True, True]

            answers = service.solutions(KNOWS_QUERY)
            assert answers == Session().solutions(parse_pattern(KNOWS_QUERY), graph)

            assert "strategy" in service.explain(OPT_QUERY)

            result = service.update(add=[Triple.of("x", "knows", "y")])
            assert result["added"] == 1 and result["removed"] == 0
            assert service.check(KNOWS_QUERY, Mapping.of(x="x", y="y")) is True

            snapshot = service.stats()
            assert snapshot["completed"] == snapshot["ok"] >= 5

    def test_responses_are_version_pinned(self):
        graph = social_graph()
        with QueryService(graph) as service:
            response = service.request(Request(op="solutions", query=KNOWS_QUERY))
            assert response.ok and response.graph_version == graph.version
            update = service.request(
                Request(op="update", add=[Triple.of("x", "knows", "y")])
            )
            assert update.graph_version == graph.version
            assert update.graph_version > response.graph_version

    def test_admission_validation(self):
        graph = social_graph()
        with QueryService(graph) as service:
            with pytest.raises(ServiceError, match="unknown operation"):
                service.submit(Request(op="frobnicate"))
            response = service.request(Request(op="check", query=KNOWS_QUERY))
            assert not response.ok and response.error_type == "ServiceError"
            missing = service.request(
                Request(op="check", graph="nope", query=KNOWS_QUERY,
                        mappings=[Mapping.of(x="p0", y="p1")])
            )
            assert not missing.ok and "unknown graph" in missing.error
        with pytest.raises(ServiceError):
            QueryService({})
        with pytest.raises(ServiceError):
            QueryService(social_graph(), max_inflight=0)

    def test_raise_for_error_falls_back_to_service_error(self):
        bad = Response(op="check", ok=False, error="boom", error_type="NoSuchError")
        with pytest.raises(ServiceError, match="boom"):
            bad.raise_for_error()
        with pytest.raises(DeadlineExceeded):
            Response(
                op="check", ok=False, error="late", error_type="DeadlineExceeded"
            ).raise_for_error()

    def test_solution_chunks_are_deterministic_and_complete(self):
        graph = social_graph()
        with QueryService(graph) as service:
            response = service.request(Request(op="solutions", query=KNOWS_QUERY))
            chunks = list(service.solution_chunks(response, chunk_size=3))
            assert all(len(chunk) <= 3 for chunk in chunks)
            flattened = [mu for chunk in chunks for mu in chunk]
            assert set(flattened) == response.result
            assert flattened == sorted(flattened, key=repr)
            with pytest.raises(ServiceError):
                next(service.solution_chunks(Response(op="check", ok=True)))


# --- the differential concurrency suite ---------------------------------------


class TestDifferentialConcurrency:
    """Seeded mixed workload at 8 threads vs a serial session, verified by
    version-pinned replay (module docstring)."""

    N = 12
    SEED = 20260808

    def build_updates(self):
        """Eight answer-affecting mutations with deterministic version
        deltas: add-only and remove-only bump by one, add+remove by two
        (each triple is unique, so every mutation is always effective)."""
        adds = [Triple.of(f"u{i}", "knows", f"w{i}") for i in range(8)]
        removes = [Triple.of(f"rem{i}", "knows", f"tgt{i}") for i in range(8)]
        updates = []
        for i in range(8):
            if i % 3 == 0:
                updates.append(([adds[i]], []))
            elif i % 3 == 1:
                updates.append(([], [removes[i]]))
            else:
                updates.append(([adds[i]], [removes[i]]))
        return updates

    def build_queries(self, rng):
        """Checks and enumerations whose verdicts depend on which mutations
        have landed: candidates span ring edges, to-be-added edges,
        to-be-removed edges, and never-true bindings."""
        candidates = (
            [Mapping.of(x=f"p{i}", y=f"p{(i + 1) % self.N}") for i in range(self.N)]
            + [Mapping.of(x=f"u{i}", y=f"w{i}") for i in range(8)]
            + [Mapping.of(x=f"rem{i}", y=f"tgt{i}") for i in range(8)]
            + [Mapping.of(x="nobody", y="nowhere")]
        )
        rows = []
        for _ in range(48):
            query = rng.choice([KNOWS_QUERY, KNOWS_QUERY, OPT_QUERY])
            if rng.random() < 0.7:
                rows.append(("check", query, rng.sample(candidates, 4)))
            else:
                rows.append(("solutions", query))
        return rows

    def test_mixed_workload_matches_serial_replay(self):
        rng = random.Random(self.SEED)
        graph = social_graph(self.N)
        base = graph.copy()
        base_version = graph.version

        schedule = self.build_queries(rng) + [
            ("update", add, remove) for add, remove in self.build_updates()
        ]
        rng.shuffle(schedule)

        with QueryService(
            graph, max_inflight=8, max_pending=len(schedule) + 1
        ) as service:
            pendings = []
            for row in schedule:
                if row[0] == "check":
                    request = Request(op="check", query=row[1], mappings=row[2])
                elif row[0] == "solutions":
                    request = Request(op="solutions", query=row[1])
                else:
                    request = Request(op="update", add=row[1], remove=row[2])
                pendings.append((row, service.submit(request)))
            resolved = [(row, p.result(timeout=120.0)) for row, p in pendings]
            assert service.stats()["peak_inflight"] >= 2

        for _row, response in resolved:
            assert response.ok, f"{response.error_type}: {response.error}"

        # Mutation accounting is deterministic: the gate serializes updates,
        # each one is effective, so final versions are distinct and the
        # sorted log is the one true mutation order.
        update_log = sorted(
            (response.graph_version, row)
            for row, response in resolved
            if row[0] == "update"
        )
        final_versions = [version for version, _row in update_log]
        assert len(set(final_versions)) == len(final_versions) == 8
        assert all(version > base_version for version in final_versions)

        def graph_at(version):
            snapshot = base.copy()
            for final_version, (_op, add, remove) in update_log:
                if final_version > version:
                    break
                for triple in remove:
                    snapshot.discard(triple)
                if add:
                    snapshot.add_all(add)
            assert snapshot.version == version  # replay landed exactly there
            return snapshot

        allowed_versions = {base_version, *final_versions}
        observed = set()
        for row, response in resolved:
            if row[0] == "update":
                continue
            # The gate means no query ever observes a half-applied update.
            assert response.graph_version in allowed_versions
            observed.add(response.graph_version)
            snapshot = graph_at(response.graph_version)
            pattern = parse_pattern(row[1])
            if row[0] == "check":
                reference = Session().check_many(pattern, snapshot, row[2])
            else:
                reference = Session().solutions(pattern, snapshot)
            assert reference == response.result, (
                f"{row[0]} at version {response.graph_version} diverged "
                f"from the serial replay"
            )
        assert len(observed) >= 2, "mutations never interleaved with queries"

    def test_update_replay_reconstruction_is_exact(self):
        """Same workload, stronger cross-check: the final live graph equals
        the replay of the full update log over the base snapshot."""
        graph = social_graph(self.N)
        base = graph.copy()
        updates = self.build_updates()
        with QueryService(graph, max_inflight=8, max_pending=64) as service:
            pendings = [
                service.submit(Request(op="update", add=add, remove=remove))
                for add, remove in updates
            ]
            for pending in pendings:
                assert pending.result(timeout=60.0).ok
        for add, remove in updates:
            for triple in remove:
                base.discard(triple)
            if add:
                base.add_all(add)
        assert set(base) == set(graph)


# --- admission control --------------------------------------------------------


class TestAdmissionControl:
    def test_full_backlog_rejects_with_typed_overload(self):
        graph = social_graph()
        service = QueryService(graph, max_inflight=1, max_pending=1)
        assert service.gate.acquire_write()  # wedge the only worker
        try:
            inflight = service.submit(check_request())
            assert wait_until(lambda: service.stats()["backlog"] == 0)
            queued = service.submit(check_request())  # backlog now full
            with pytest.raises(ServiceOverloadedError) as info:
                service.submit(check_request())
            assert info.value.pending == 1 and info.value.max_pending == 1
            snapshot = service.stats()
            assert snapshot["rejected_overload"] == 1
            assert snapshot["backlog"] == 1 and snapshot["inflight"] == 1
        finally:
            service.gate.release_write()
        assert inflight.result(timeout=30.0).ok
        assert queued.result(timeout=30.0).ok
        service.close()

    def test_rejection_is_immediate_not_queued(self):
        # max_pending=0 admits nothing: rejection happens at submit time,
        # without waiting on workers, the gate, or the queue.
        graph = social_graph()
        service = QueryService(graph, max_inflight=1, max_pending=0)
        assert service.gate.acquire_write()  # workers could not help anyway
        try:
            started = time.monotonic()
            with pytest.raises(ServiceOverloadedError):
                service.submit(check_request())
            assert time.monotonic() - started < 1.0
            assert service.stats()["rejected_overload"] == 1
        finally:
            service.gate.release_write()
        service.close()


# --- deadlines ----------------------------------------------------------------


class TestDeadlines:
    def test_expired_while_queued_resolves_typed_error(self):
        graph = social_graph()
        with QueryService(graph) as service:
            response = service.request(check_request(deadline=0.0), timeout=30.0)
            assert not response.ok and response.error_type == "DeadlineExceeded"
            assert service.stats()["deadline_trips"] == 1
            with pytest.raises(DeadlineExceeded):
                response.raise_for_error()

    def test_convenience_entry_points_raise(self):
        graph = social_graph()
        with QueryService(graph) as service:
            with pytest.raises(DeadlineExceeded):
                service.check(KNOWS_QUERY, Mapping.of(x="p0", y="p1"), deadline=0.0)
            with pytest.raises(DeadlineExceeded):
                service.solutions(KNOWS_QUERY, deadline=0.0)

    def test_write_hold_trips_reader_deadline_at_the_gate(self):
        graph = social_graph()
        service = QueryService(graph, max_inflight=2)
        assert service.gate.acquire_write()
        try:
            response = service.request(check_request(deadline=0.2), timeout=30.0)
            assert not response.ok and response.error_type == "DeadlineExceeded"
            assert "gate" in response.error
        finally:
            service.gate.release_write()
        service.close()

    def test_default_deadline_applies_when_request_has_none(self):
        graph = social_graph()
        service = QueryService(graph, max_inflight=2, default_deadline=0.2)
        assert service.gate.acquire_write()
        try:
            response = service.request(check_request(), timeout=30.0)
            assert not response.ok and response.error_type == "DeadlineExceeded"
        finally:
            service.gate.release_write()
        service.close()


# --- the stats endpoint -------------------------------------------------------


class TestStatsEndpoint:
    def test_stats_operation_reports_counters_and_latency(self):
        graph = social_graph()
        with QueryService(graph) as service:
            service.check(KNOWS_QUERY, Mapping.of(x="p0", y="p1"))
            service.solutions(KNOWS_QUERY)
            service.update(add=[Triple.of("x", "knows", "y")])
            service.request(check_request(deadline=0.0), timeout=30.0)
            response = service.request(Request(op="stats"), timeout=30.0)
            assert response.ok
            snapshot = response.result
            # the in-flight stats request itself is already admitted
            assert snapshot["admitted"] == {
                "check": 2, "solutions": 1, "update": 1, "stats": 1,
            }
            assert snapshot["completed"] == 4 and snapshot["ok"] == 3
            assert snapshot["errors"] == 1
            assert snapshot["error_types"] == {"DeadlineExceeded": 1}
            assert snapshot["deadline_trips"] == 1
            assert snapshot["updates_applied"] == 1
            assert snapshot["triples_added"] == 1
            latency = snapshot["latency"]
            assert latency["all"]["count"] == 4
            assert latency["check"]["p50_ms"] <= latency["check"]["p99_ms"]
            assert snapshot["graphs"]["default"]["triples"] == len(graph)
            assert snapshot["graphs"]["default"]["version"] == graph.version
            assert snapshot["peak_inflight"] >= 1
            assert "hits" in snapshot["cache"] or snapshot["cache"]
            assert isinstance(snapshot["resilience"], str)
            assert snapshot["engines"] == service.session.engine_count


# --- fault injection through the service --------------------------------------


class TestServiceFaultInjection:
    """The PR 7 fault harness pointed at the service: injected faults must
    come back as typed error responses with counters bumped — never hung
    clients, never wrong answers on the unaffected requests."""

    def test_injected_raise_resolves_as_typed_error(self):
        graph = social_graph()
        with QueryService(graph, faults=FaultPlan(raise_at=1)) as service:
            pendings = [service.submit(check_request()) for _ in range(3)]
            responses = [pending.result(timeout=30.0) for pending in pendings]
        by_position = {response.request_id: response for response in responses}
        assert not by_position[1].ok
        assert by_position[1].error_type == "FaultInjected"
        assert by_position[0].ok and by_position[2].ok
        assert by_position[0].result == [True]

    def test_queue_stall_trips_the_deadline_not_the_client(self):
        graph = social_graph()
        plan = FaultPlan(stall_at=0, stall_seconds=0.5)
        with QueryService(graph, max_inflight=1, faults=plan) as service:
            stalled = service.submit(check_request(deadline=0.15))
            healthy = service.submit(check_request())
            first = stalled.result(timeout=30.0)
            second = healthy.result(timeout=30.0)
        assert not first.ok and first.error_type == "DeadlineExceeded"
        assert first.elapsed >= 0.5  # the stall really held the worker
        assert second.ok and second.result == [True]

    def test_mid_run_mutation_probe_moves_the_version_only(self):
        graph = social_graph()
        before = graph.version
        plan = FaultPlan(mutate_graph_at=0)
        with QueryService(graph, faults=plan) as service:
            first = service.request(
                Request(op="solutions", query=KNOWS_QUERY), timeout=30.0
            )
            second = service.request(
                Request(op="solutions", query=KNOWS_QUERY), timeout=30.0
            )
        assert first.ok and second.ok
        # the probe adds and discards one triple: two bumps, same answers
        assert graph.version == before + 2
        assert first.result == second.result
        assert second.result == Session().solutions(parse_pattern(KNOWS_QUERY), graph)

    def test_faulty_responses_are_counted(self):
        graph = social_graph()
        with QueryService(graph, faults=FaultPlan(raise_at=0)) as service:
            response = service.request(check_request(), timeout=30.0)
            assert not response.ok
            snapshot = service.stats()
        assert snapshot["errors"] == 1
        assert snapshot["error_types"] == {"FaultInjected": 1}


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool crash recovery needs a POSIX multiprocessing platform",
)
class TestServiceWorkerCrash:
    def test_pool_crash_under_the_service_keeps_verdicts_identical(self):
        graph = social_graph(20)
        mus = [Mapping.of(x=f"p{i}", y=f"p{(i + 1) % 20}") for i in range(20)]
        reference = Session().check_many(parse_pattern(OPT_QUERY), graph, mus)
        session = Session(
            processes=2, stream_grace_seconds=0.8, faults=FaultPlan(kill_at=0)
        )
        with QueryService(graph, session=session) as service:
            verdicts = service.check(OPT_QUERY, mus)
        assert verdicts == reference
        assert session.statistics.worker_crashes >= 1
        assert "worker crash" in service.stats()["resilience"]


# --- lifecycle ----------------------------------------------------------------


class TestCloseSemantics:
    def test_close_drains_queued_requests_by_default(self):
        graph = social_graph()
        plan = FaultPlan(stall_at=0, stall_seconds=0.3)
        service = QueryService(graph, max_inflight=1, faults=plan)
        pendings = [service.submit(check_request()) for _ in range(3)]
        service.close()  # drain=True: everything queued still runs
        for pending in pendings:
            response = pending.result(timeout=30.0)
            assert response.ok and response.result == [True]

    def test_close_without_drain_resolves_queued_with_closed_error(self):
        graph = social_graph()
        plan = FaultPlan(stall_at=0, stall_seconds=0.5)
        service = QueryService(graph, max_inflight=1, max_pending=16, faults=plan)
        inflight = service.submit(check_request())
        assert wait_until(lambda: service.stats()["inflight"] == 1)
        queued = [service.submit(check_request()) for _ in range(3)]
        service.close(drain=False)
        assert inflight.result(timeout=30.0).ok  # already running: completes
        for pending in queued:
            response = pending.result(timeout=30.0)
            assert not response.ok
            assert response.error_type == "ServiceClosedError"
        with pytest.raises(ServiceClosedError):
            service.submit(check_request())
        service.close()  # idempotent

    def test_every_pending_resolves_exactly_once(self):
        graph = social_graph()
        service = QueryService(graph, max_inflight=4)
        pendings = [service.submit(check_request()) for _ in range(8)]
        service.close()
        assert all(pending.done() for pending in pendings)


# --- the socket protocol ------------------------------------------------------


@pytest.fixture()
def served():
    """A live server over a fresh service; yields (address, service)."""
    service = QueryService(social_graph(), max_inflight=4)
    server = ServiceServer(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.address, service
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        service.close()


class TestSocketProtocol:
    def test_client_round_trip(self, served):
        (host, port), service = served
        with ServiceClient(host, port) as client:
            assert client.check(KNOWS_QUERY, {"x": "p0", "y": "p1"}) is True
            assert client.check(
                KNOWS_QUERY, [{"x": "p0", "y": "p1"}, {"x": "p0", "y": "p5"}]
            ) == [True, False]

            wire = client.solutions(KNOWS_QUERY, chunk_size=2)
            local = service.solutions(KNOWS_QUERY)
            assert {frozenset(row.items()) for row in wire} == {
                frozenset(mapping_to_wire(mu).items()) for mu in local
            }

            result = client.update(add=[("x", "knows", "y")])
            assert result["added"] == 1
            assert client.check(KNOWS_QUERY, {"x": "x", "y": "y"}) is True

            assert "strategy" in client.explain(OPT_QUERY)
            snapshot = client.stats()
            assert snapshot["completed"] >= 5 and snapshot["graphs"]

    def test_wire_errors_reraise_their_library_types(self, served):
        (host, port), service = served
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="unknown graph"):
                client.check(KNOWS_QUERY, {"x": "p0", "y": "p1"}, graph="nope")
            assert service.gate.acquire_write()
            try:
                with pytest.raises(DeadlineExceeded):
                    client.check(KNOWS_QUERY, {"x": "p0", "y": "p1"}, deadline=0.2)
            finally:
                service.gate.release_write()
            # the connection survived both failures
            assert client.check(KNOWS_QUERY, {"x": "p0", "y": "p1"}) is True

    def test_protocol_error_is_in_band_and_connection_survives(self, served):
        (host, port), _service = served
        with socket.create_connection((host, port), timeout=10.0) as conn:
            reader = conn.makefile("rb")
            conn.sendall(b"this is not json\n")
            line = json.loads(reader.readline())
            assert line["ok"] is False and line["error_type"] == "ProtocolError"
            conn.sendall(
                json.dumps(
                    {
                        "op": "check",
                        "query": KNOWS_QUERY,
                        "bindings": [{"x": "p0", "y": "p1"}],
                        "id": 7,
                    }
                ).encode()
                + b"\n"
            )
            line = json.loads(reader.readline())
            assert line["ok"] is True and line["result"] == [True]
            assert line["id"] == 7

    def test_max_requests_shuts_the_server_down(self):
        service = QueryService(social_graph(), max_inflight=2)
        server = ServiceServer(service, max_requests=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.address
        try:
            with ServiceClient(host, port) as client:
                client.stats()
                client.stats()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert server.requests_served == 2
        finally:
            server.shutdown()
            service.close()

    def test_oversized_line_is_rejected(self, served):
        (host, port), _service = served
        with socket.create_connection((host, port), timeout=10.0) as conn:
            reader = conn.makefile("rb")
            conn.sendall(b'{"op": "check", "pad": "' + b"x" * (17 << 20) + b'"}\n')
            line = json.loads(reader.readline())
            assert line["ok"] is False and line["error_type"] == "ProtocolError"


class TestProtocolUnit:
    def test_decode_rejects_garbage(self):
        from repro.service.protocol import decode_line

        with pytest.raises(ProtocolError):
            decode_line(b"not json")
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]")

    def test_request_validation(self):
        from repro.service.protocol import request_from_wire

        with pytest.raises(ProtocolError, match="op"):
            request_from_wire({})
        with pytest.raises(ProtocolError, match="deadline"):
            request_from_wire({"op": "check", "query": KNOWS_QUERY, "deadline": -1})
        with pytest.raises(ProtocolError):
            request_from_wire({"op": "check", "bindings": "not-a-list"})

    def test_mapping_round_trip(self):
        from repro.service.protocol import mapping_from_wire, mapping_to_wire

        mu = Mapping.of(x="p0", y="p1")
        assert mapping_from_wire(mapping_to_wire(mu)) == mu
