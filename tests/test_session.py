"""Unit tests for the Session workspace (multi-pattern, multi-graph)."""

import pytest

from repro.evaluation import BatchEngine, Engine, EvaluationCache, Session
from repro.exceptions import EvaluationError
from repro.patterns import WDPatternForest
from repro.rdf.generators import random_graph
from repro.rdf.terms import IRI
from repro.sparql import Mapping, parse_pattern
from repro.workloads.families import fk_data_graph, fk_forest, tprime_data_graph, tprime_tree
from repro.workloads.random_patterns import random_wd_tree


@pytest.fixture
def setting():
    forest = fk_forest(2)
    graph = fk_data_graph(6, 30, clique_size=2, seed=2)
    engine = Engine(forest=forest, width_bound=1)
    solutions = sorted(engine.solutions(graph, method="natural"), key=repr)[:5]
    queries = list(solutions)
    for mu in solutions[:2]:
        bindings = mu.as_dict()
        first = sorted(bindings, key=lambda v: v.name)[0]
        bindings[first] = IRI("http://example.org/__nowhere__")
        queries.append(Mapping(bindings))
    return forest, graph, engine, queries


class TestEngines:
    def test_engines_memoized_structurally_for_patterns(self):
        session = Session()
        p1 = parse_pattern("((?x p ?y) OPT (?y q ?z))")
        p2 = parse_pattern("((?x p ?y) OPT (?y q ?z))")
        assert p1 is not p2
        assert session.engine(p1) is session.engine(p2)

    def test_engines_memoized_by_identity_for_forests(self):
        session = Session()
        forest = fk_forest(2)
        assert session.engine(forest) is session.engine(forest)
        assert session.engine(forest) is not session.engine(fk_forest(2))

    def test_engines_share_session_cache(self):
        session = Session()
        engine = session.engine(parse_pattern("(?x p ?y)"))
        assert engine.cache is session.cache

    def test_foreign_engine_rewired_onto_session_cache(self):
        session = Session()
        foreign = Engine(parse_pattern("(?x p ?y)"), width_bound=1)
        adopted = session.engine(foreign)
        assert adopted is not foreign
        assert adopted.cache is session.cache
        assert adopted.width_bound == 1
        assert session.engine(foreign) is adopted

    def test_rejects_non_pattern(self):
        with pytest.raises(EvaluationError):
            Session().engine(42)

    def test_invalid_processes(self):
        with pytest.raises(EvaluationError):
            Session(processes=0)

    def test_invalid_max_engines(self):
        with pytest.raises(EvaluationError):
            Session(max_engines=0)

    def test_session_wired_engine_is_not_rememoized(self):
        session = Session(max_engines=2)
        p1 = parse_pattern("(?x p ?y)")
        p2 = parse_pattern("(?x q ?y)")
        e1, e2 = session.engine(p1), session.engine(p2)
        # Routing the handles back in (as check_many / solutions_many do)
        # must neither rebuild them nor burn LRU slots on duplicate keys.
        assert session.engine(e1) is e1
        assert session.engine(e2) is e2
        assert session.engine_count == 2
        assert session.engine(p1) is e1
        assert session.engine(p2) is e2

    def test_max_engines_evicts_least_recently_used(self):
        session = Session(max_engines=2)
        p1 = parse_pattern("(?x p ?y)")
        p2 = parse_pattern("(?x q ?y)")
        p3 = parse_pattern("(?x r ?y)")
        e1 = session.engine(p1)
        e2 = session.engine(p2)
        session.engine(p1)  # refresh p1's recency
        session.engine(p3)  # evicts p2, the least recently used
        assert session.engine_count == 2
        assert session.engine(p1) is e1  # p1 survived the eviction
        assert session.engine(p2) is not e2  # p2 was rebuilt


class TestCheckMany:
    @pytest.mark.parametrize("method", ["naive", "natural", "pebble", "auto"])
    def test_identical_to_single_shot(self, setting, method):
        forest, graph, engine, queries = setting
        expected = [engine.contains(graph, mu, method=method) for mu in queries]
        session = Session()
        handle = session.engine(forest, width_bound=1)
        assert session.check_many(handle, graph, queries, method=method) == expected

    def test_order_duplicates_and_empty(self, setting):
        forest, graph, engine, queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        doubled = queries + list(reversed(queries))
        answers = session.check_many(handle, graph, doubled)
        assert answers == [engine.contains(graph, mu) for mu in doubled]
        assert session.check_many(handle, graph, []) == []

    def test_parallel_identical(self, setting):
        forest, graph, engine, queries = setting
        expected = [engine.contains(graph, mu, method="pebble") for mu in queries]
        session = Session(processes=2)
        handle = session.engine(forest, width_bound=1)
        assert session.check_many(handle, graph, queries, method="pebble") == expected

    def test_check_single(self, setting):
        forest, graph, engine, queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        for mu in queries:
            assert session.check(handle, graph, mu) == engine.contains(graph, mu)

    def test_plan_and_explain(self, setting):
        forest, _graph, _engine, _queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        plan = session.plan(handle)
        assert (plan.strategy, plan.width) == ("pebble", 1)
        assert "chosen strategy" in session.explain(handle)


class TestStreaming:
    def test_stream_matches_solutions(self):
        session = Session()
        forest = WDPatternForest([tprime_tree(2)])
        graph = tprime_data_graph(6, 20, seed=4)
        stream = session.solutions_stream(forest, graph)
        first = next(stream, None)  # the stream is lazy and resumable
        rest = set(stream)
        expected = Engine(forest=forest).solutions(graph, method="natural")
        assert ({first} | rest if first is not None else rest) == expected

    def test_stream_deduplicates(self):
        session = Session()
        forest = fk_forest(2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=1)
        streamed = list(session.solutions_stream(forest, graph))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == Engine(forest=forest).solutions(graph, method="natural")

    def test_auto_enumeration_resolves_to_natural(self):
        session = Session()
        pattern = parse_pattern(
            "((?x <http://example.org/p> ?y) OPT (?y <http://example.org/q> ?z))"
        )
        graph = random_graph(5, 20, seed=9)
        auto = session.solutions(pattern, graph, method="auto")
        assert auto  # the workload has real solutions
        assert auto == session.solutions(pattern, graph, method="natural")

    def test_pebble_enumeration_rejected(self):
        session = Session()
        with pytest.raises(EvaluationError):
            session.solutions(parse_pattern("(?x p ?y)"), random_graph(3, 5, seed=0), "pebble")


class TestSolutionsMany:
    def test_randomized_parity_with_naive_enumeration(self):
        """Session.solutions_many must be identical to per-pattern naive
        enumeration on randomized patterns × graphs."""
        for seed in range(6):
            patterns = [
                WDPatternForest([random_wd_tree(num_nodes=3, seed=seed * 7 + i)])
                for i in range(3)
            ]
            graphs = [random_graph(5, 22, seed=seed * 11 + j) for j in range(2)]
            session = Session()
            matrix = session.solutions_many(patterns, graphs)
            expected = [
                [Engine(forest=forest).solutions(graph, method="naive") for graph in graphs]
                for forest in patterns
            ]
            assert matrix == expected, f"parity failure for seed {seed}"

    def test_single_graph_returns_flat_list(self):
        session = Session()
        graph = tprime_data_graph(6, 20, seed=3)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        answers = session.solutions_many(patterns, graph)
        assert len(answers) == 2
        for forest, answer in zip(patterns, answers):
            assert answer == Engine(forest=forest).solutions(graph, method="naive")

    def test_duplicate_cells_share_one_engine_but_stay_independent(self):
        session = Session()
        graph = random_graph(6, 30, seed=5)
        text = "((?x <http://example.org/p> ?y) OPT (?y <http://example.org/q> ?z))"
        pattern = parse_pattern(text)
        duplicate = parse_pattern(text)
        answers = session.solutions_many([pattern, duplicate, pattern], graph)
        assert answers[0] and answers[0] == answers[1] == answers[2]
        # Structurally equal patterns share one engine (one enumeration)...
        assert session.engine(pattern) is session.engine(duplicate)
        # ...but the returned sets are independent copies, like a loop of
        # per-pattern Engine.solutions calls would produce.
        assert answers[0] is not answers[1]
        answers[0].clear()
        assert answers[1] == answers[2]

    def test_parallel_matches_serial(self):
        graph = tprime_data_graph(6, 20, seed=6)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        serial = Session().solutions_many(patterns, graph)
        parallel = Session().solutions_many(patterns, graph, processes=2)
        assert serial == parallel

    def test_parallel_matrix_matches_serial(self):
        graphs = [tprime_data_graph(6, 20, seed=7), tprime_data_graph(5, 15, seed=8)]
        patterns = [
            WDPatternForest([tprime_tree(2)]),
            WDPatternForest([tprime_tree(3)]),
            WDPatternForest([tprime_tree(2)]),
        ]
        serial = Session().solutions_many(patterns, graphs)
        parallel = Session().solutions_many(patterns, graphs, processes=2)
        assert serial == parallel

    def test_shared_cache_is_exercised(self):
        session = Session()
        graph = tprime_data_graph(6, 20, seed=1)
        forest = WDPatternForest([tprime_tree(2)])
        session.solutions_many([forest, forest], graph)
        stats = session.cache.statistics
        assert stats.hits + stats.misses > 0

    def test_warm_fork_parallel_matches_cold_and_serial(self):
        """The warm-fork path (workers inherit a hot parent session) and the
        cold-worker path (warm_on_fork=False) must produce identical answer
        sets — warming is a pure performance feature."""
        graph = tprime_data_graph(6, 20, seed=9)
        patterns = [
            WDPatternForest([tprime_tree(2)]),
            WDPatternForest([tprime_tree(3)]),
            WDPatternForest([tprime_tree(2)]),
        ]
        serial = Session().solutions_many(patterns, graph)
        warm_session = Session()
        warm_session.solutions_many(patterns, graph)  # steady state: hot cache
        warm = warm_session.solutions_many(patterns, graph, processes=2)
        cold = Session(warm_on_fork=False).solutions_many(patterns, graph, processes=2)
        assert warm == serial == cold

    def test_replayed_enumeration_matches_first_run(self):
        """A second enumeration replays the recorded answer lists (cache
        hits) and must return equal but independent sets."""
        session = Session()
        graph = tprime_data_graph(6, 20, seed=4)
        forest = WDPatternForest([tprime_tree(2)])
        first = session.solutions(forest, graph)
        before = session.cache.statistics.enum_hits
        second = session.solutions(forest, graph)
        assert second == first and second is not first
        assert session.cache.statistics.enum_hits > before


class TestSolutionsIter:
    def _workload(self):
        graphs = [tprime_data_graph(6, 20, seed=11), tprime_data_graph(5, 15, seed=12)]
        repeated = WDPatternForest([tprime_tree(2)])
        patterns = [
            repeated,
            WDPatternForest([tprime_tree(3)]),
            WDPatternForest([tprime_tree(2)]),  # structurally equal, distinct object
            repeated,  # duplicate cell: same forest object twice
        ]
        return patterns, graphs

    def _collect(self, iterator):
        got = {}
        for cell, mu in iterator:
            got.setdefault(cell, set()).add(mu)
        return got

    @pytest.mark.parametrize("processes", [None, 2])
    @pytest.mark.parametrize("order", ["submitted", "completed"])
    def test_parity_with_solutions_many(self, order, processes):
        patterns, graphs = self._workload()
        session = Session()
        matrix = session.solutions_many(patterns, graphs)
        got = self._collect(
            Session().solutions_iter(patterns, graphs, order=order, processes=processes)
        )
        for i in range(len(patterns)):
            for j in range(len(graphs)):
                assert got.get((i, j), set()) == matrix[i][j], (order, processes, i, j)

    def test_single_graph_cells_use_graph_index_zero(self):
        patterns, graphs = self._workload()
        session = Session()
        flat = session.solutions_many(patterns, graphs[0])
        got = self._collect(session.solutions_iter(patterns, graphs[0]))
        assert all(cell[1] == 0 for cell in got)
        for i in range(len(patterns)):
            assert got.get((i, 0), set()) == flat[i]

    def test_submitted_order_is_submission_order(self):
        patterns, graphs = self._workload()
        cells_seen = []
        for cell, _mu in Session().solutions_iter(patterns, graphs, order="submitted"):
            if not cells_seen or cells_seen[-1] != cell:
                cells_seen.append(cell)
        assert cells_seen == sorted(cells_seen)

    def test_serial_first_occurrence_streams_lazily(self):
        """The first solutions arrive before later cells are evaluated."""
        session = Session()
        graph = tprime_data_graph(6, 20, seed=11)
        full = WDPatternForest([tprime_tree(2)])
        iterator = session.solutions_iter([full, WDPatternForest([tprime_tree(3)])], graph)
        cell, mu = next(iterator)
        assert cell == (0, 0)
        assert mu in Engine(forest=full).solutions(graph, method="naive")

    def test_invalid_order_rejected(self):
        session = Session()
        with pytest.raises(EvaluationError):
            next(session.solutions_iter([WDPatternForest([tprime_tree(2)])],
                                        tprime_data_graph(5, 15, seed=1), order="random"))


class TestSolutionsAutoBugfix:
    """`Engine.solutions(method="auto")` used to raise; it must resolve to
    the natural strategy everywhere the method argument is accepted."""

    def test_engine_solutions_auto(self):
        graph = tprime_data_graph(6, 20, seed=2)
        engine = Engine(forest=WDPatternForest([tprime_tree(2)]), width_bound=1)
        assert engine.solutions(graph, method="auto") == engine.solutions(
            graph, method="natural"
        )

    def test_batch_engine_solutions_auto(self):
        graph = tprime_data_graph(6, 20, seed=2)
        batch = BatchEngine(forest=WDPatternForest([tprime_tree(2)]), width_bound=1)
        assert batch.solutions(graph, method="auto") == batch.solutions(graph, method="natural")


class TestBatchEngineAdapter:
    def test_from_session_shares_cache(self):
        session = Session()
        batch = BatchEngine.from_session(session, parse_pattern("(?x p ?y)"))
        assert batch.cache is session.cache
        assert batch.session is session

    def test_warm_returns_kernel_count(self, setting):
        forest, graph, _engine, _queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        # No mappings: warming covers the root-subtree child instances.
        count = session.warm(handle, graph, method="pebble", width=1)
        assert count > 0
        assert session.cache.statistics.kernel_misses > 0

    def test_session_cache_reused_by_adapter(self):
        cache = EvaluationCache()
        batch = BatchEngine(parse_pattern("(?x p ?y)"), cache=cache)
        assert batch.cache is cache
        assert batch.session.cache is cache


class TestPicklability:
    def test_graph_pattern_round_trips(self):
        import pickle

        pattern = parse_pattern("(((?x p ?y) AND (?y q ?z)) OPT ((?z r ?w) UNION (?z p ?w)))")
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone == pattern

    def test_engine_round_trips(self):
        import pickle

        graph = tprime_data_graph(6, 20, seed=4)
        engine = Engine(forest=WDPatternForest([tprime_tree(2)]), width_bound=1)
        engine.domination_width()
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.width_bound == engine.width_bound
        assert clone.resolve_method("auto") == engine.resolve_method("auto")
        assert clone.solutions(graph, method="natural") == engine.solutions(
            graph, method="natural"
        )

    def test_warmed_session_engine_still_pickles(self):
        import pickle

        graph = tprime_data_graph(6, 20, seed=4)
        session = Session()
        engine = session.engine(WDPatternForest([tprime_tree(2)]), width_bound=1)
        mu = sorted(session.solutions(engine, graph), key=repr)[0]
        # A pebble check caches a ConsistencyKernel (which holds a graph
        # weakref); pickling must still work — the cache is process-local
        # state and is dropped from the pickle.
        session.check(engine, graph, mu, method="pebble", width=1)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.cache is None
        assert clone.contains(graph, mu, method="pebble", width=1) == engine.contains(
            graph, mu, method="pebble", width=1
        )
