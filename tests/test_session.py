"""Unit tests for the Session workspace (multi-pattern, multi-graph)."""

import pytest

from repro.evaluation import BatchEngine, Engine, EvaluationCache, Session
from repro.exceptions import EvaluationError
from repro.patterns import WDPatternForest
from repro.rdf import Triple
from repro.rdf.generators import random_graph
from repro.rdf.namespace import EX
from repro.rdf.terms import IRI
from repro.sparql import Mapping, parse_pattern
from repro.workloads.families import fk_data_graph, fk_forest, tprime_data_graph, tprime_tree
from repro.workloads.random_patterns import random_wd_tree


@pytest.fixture
def setting():
    forest = fk_forest(2)
    graph = fk_data_graph(6, 30, clique_size=2, seed=2)
    engine = Engine(forest=forest, width_bound=1)
    solutions = sorted(engine.solutions(graph, method="natural"), key=repr)[:5]
    queries = list(solutions)
    for mu in solutions[:2]:
        bindings = mu.as_dict()
        first = sorted(bindings, key=lambda v: v.name)[0]
        bindings[first] = IRI("http://example.org/__nowhere__")
        queries.append(Mapping(bindings))
    return forest, graph, engine, queries


class TestEngines:
    def test_engines_memoized_structurally_for_patterns(self):
        session = Session()
        p1 = parse_pattern("((?x p ?y) OPT (?y q ?z))")
        p2 = parse_pattern("((?x p ?y) OPT (?y q ?z))")
        assert p1 is not p2
        assert session.engine(p1) is session.engine(p2)

    def test_engines_memoized_by_identity_for_forests(self):
        session = Session()
        forest = fk_forest(2)
        assert session.engine(forest) is session.engine(forest)
        assert session.engine(forest) is not session.engine(fk_forest(2))

    def test_engines_share_session_cache(self):
        session = Session()
        engine = session.engine(parse_pattern("(?x p ?y)"))
        assert engine.cache is session.cache

    def test_foreign_engine_rewired_onto_session_cache(self):
        session = Session()
        foreign = Engine(parse_pattern("(?x p ?y)"), width_bound=1)
        adopted = session.engine(foreign)
        assert adopted is not foreign
        assert adopted.cache is session.cache
        assert adopted.width_bound == 1
        assert session.engine(foreign) is adopted

    def test_rejects_non_pattern(self):
        with pytest.raises(EvaluationError):
            Session().engine(42)

    def test_invalid_processes(self):
        with pytest.raises(EvaluationError):
            Session(processes=0)

    def test_invalid_max_engines(self):
        with pytest.raises(EvaluationError):
            Session(max_engines=0)

    def test_session_wired_engine_is_not_rememoized(self):
        session = Session(max_engines=2)
        p1 = parse_pattern("(?x p ?y)")
        p2 = parse_pattern("(?x q ?y)")
        e1, e2 = session.engine(p1), session.engine(p2)
        # Routing the handles back in (as check_many / solutions_many do)
        # must neither rebuild them nor burn LRU slots on duplicate keys.
        assert session.engine(e1) is e1
        assert session.engine(e2) is e2
        assert session.engine_count == 2
        assert session.engine(p1) is e1
        assert session.engine(p2) is e2

    def test_max_engines_evicts_least_recently_used(self):
        session = Session(max_engines=2)
        p1 = parse_pattern("(?x p ?y)")
        p2 = parse_pattern("(?x q ?y)")
        p3 = parse_pattern("(?x r ?y)")
        e1 = session.engine(p1)
        e2 = session.engine(p2)
        session.engine(p1)  # refresh p1's recency
        session.engine(p3)  # evicts p2, the least recently used
        assert session.engine_count == 2
        assert session.engine(p1) is e1  # p1 survived the eviction
        assert session.engine(p2) is not e2  # p2 was rebuilt


class TestCheckMany:
    @pytest.mark.parametrize("method", ["naive", "natural", "pebble", "auto"])
    def test_identical_to_single_shot(self, setting, method):
        forest, graph, engine, queries = setting
        expected = [engine.contains(graph, mu, method=method) for mu in queries]
        session = Session()
        handle = session.engine(forest, width_bound=1)
        assert session.check_many(handle, graph, queries, method=method) == expected

    def test_order_duplicates_and_empty(self, setting):
        forest, graph, engine, queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        doubled = queries + list(reversed(queries))
        answers = session.check_many(handle, graph, doubled)
        assert answers == [engine.contains(graph, mu) for mu in doubled]
        assert session.check_many(handle, graph, []) == []

    def test_parallel_identical(self, setting):
        forest, graph, engine, queries = setting
        expected = [engine.contains(graph, mu, method="pebble") for mu in queries]
        session = Session(processes=2)
        handle = session.engine(forest, width_bound=1)
        assert session.check_many(handle, graph, queries, method="pebble") == expected

    def test_check_single(self, setting):
        forest, graph, engine, queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        for mu in queries:
            assert session.check(handle, graph, mu) == engine.contains(graph, mu)

    def test_plan_and_explain(self, setting):
        forest, _graph, _engine, _queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        plan = session.plan(handle)
        assert (plan.strategy, plan.width) == ("pebble", 1)
        assert "chosen strategy" in session.explain(handle)


class TestStreaming:
    def test_stream_matches_solutions(self):
        session = Session()
        forest = WDPatternForest([tprime_tree(2)])
        graph = tprime_data_graph(6, 20, seed=4)
        stream = session.solutions_stream(forest, graph)
        first = next(stream, None)  # the stream is lazy and resumable
        rest = set(stream)
        expected = Engine(forest=forest).solutions(graph, method="natural")
        assert ({first} | rest if first is not None else rest) == expected

    def test_stream_deduplicates(self):
        session = Session()
        forest = fk_forest(2)
        graph = fk_data_graph(5, 25, clique_size=2, seed=1)
        streamed = list(session.solutions_stream(forest, graph))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == Engine(forest=forest).solutions(graph, method="natural")

    def test_auto_enumeration_resolves_to_natural(self):
        session = Session()
        pattern = parse_pattern(
            "((?x <http://example.org/p> ?y) OPT (?y <http://example.org/q> ?z))"
        )
        graph = random_graph(5, 20, seed=9)
        auto = session.solutions(pattern, graph, method="auto")
        assert auto  # the workload has real solutions
        assert auto == session.solutions(pattern, graph, method="natural")

    def test_pebble_enumeration_rejected(self):
        session = Session()
        with pytest.raises(EvaluationError):
            session.solutions(parse_pattern("(?x p ?y)"), random_graph(3, 5, seed=0), "pebble")


class TestSolutionsMany:
    def test_randomized_parity_with_naive_enumeration(self):
        """Session.solutions_many must be identical to per-pattern naive
        enumeration on randomized patterns × graphs."""
        for seed in range(6):
            patterns = [
                WDPatternForest([random_wd_tree(num_nodes=3, seed=seed * 7 + i)])
                for i in range(3)
            ]
            graphs = [random_graph(5, 22, seed=seed * 11 + j) for j in range(2)]
            session = Session()
            matrix = session.solutions_many(patterns, graphs)
            expected = [
                [Engine(forest=forest).solutions(graph, method="naive") for graph in graphs]
                for forest in patterns
            ]
            assert matrix == expected, f"parity failure for seed {seed}"

    def test_single_graph_returns_flat_list(self):
        session = Session()
        graph = tprime_data_graph(6, 20, seed=3)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        answers = session.solutions_many(patterns, graph)
        assert len(answers) == 2
        for forest, answer in zip(patterns, answers):
            assert answer == Engine(forest=forest).solutions(graph, method="naive")

    def test_duplicate_cells_share_one_engine_but_stay_independent(self):
        session = Session()
        graph = random_graph(6, 30, seed=5)
        text = "((?x <http://example.org/p> ?y) OPT (?y <http://example.org/q> ?z))"
        pattern = parse_pattern(text)
        duplicate = parse_pattern(text)
        answers = session.solutions_many([pattern, duplicate, pattern], graph)
        assert answers[0] and answers[0] == answers[1] == answers[2]
        # Structurally equal patterns share one engine (one enumeration)...
        assert session.engine(pattern) is session.engine(duplicate)
        # ...but the returned sets are independent copies, like a loop of
        # per-pattern Engine.solutions calls would produce.
        assert answers[0] is not answers[1]
        answers[0].clear()
        assert answers[1] == answers[2]

    def test_parallel_matches_serial(self):
        graph = tprime_data_graph(6, 20, seed=6)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        serial = Session().solutions_many(patterns, graph)
        parallel = Session().solutions_many(patterns, graph, processes=2)
        assert serial == parallel

    def test_parallel_matrix_matches_serial(self):
        graphs = [tprime_data_graph(6, 20, seed=7), tprime_data_graph(5, 15, seed=8)]
        patterns = [
            WDPatternForest([tprime_tree(2)]),
            WDPatternForest([tprime_tree(3)]),
            WDPatternForest([tprime_tree(2)]),
        ]
        serial = Session().solutions_many(patterns, graphs)
        parallel = Session().solutions_many(patterns, graphs, processes=2)
        assert serial == parallel

    def test_shared_cache_is_exercised(self):
        session = Session()
        graph = tprime_data_graph(6, 20, seed=1)
        forest = WDPatternForest([tprime_tree(2)])
        session.solutions_many([forest, forest], graph)
        stats = session.cache.statistics
        assert stats.hits + stats.misses > 0

    def test_warm_fork_parallel_matches_cold_and_serial(self):
        """The warm-fork path (workers inherit a hot parent session) and the
        cold-worker path (warm_on_fork=False) must produce identical answer
        sets — warming is a pure performance feature."""
        graph = tprime_data_graph(6, 20, seed=9)
        patterns = [
            WDPatternForest([tprime_tree(2)]),
            WDPatternForest([tprime_tree(3)]),
            WDPatternForest([tprime_tree(2)]),
        ]
        serial = Session().solutions_many(patterns, graph)
        warm_session = Session()
        warm_session.solutions_many(patterns, graph)  # steady state: hot cache
        warm = warm_session.solutions_many(patterns, graph, processes=2)
        cold = Session(warm_on_fork=False).solutions_many(patterns, graph, processes=2)
        assert warm == serial == cold

    def test_replayed_enumeration_matches_first_run(self):
        """A second enumeration replays the recorded answer lists (cache
        hits) and must return equal but independent sets."""
        session = Session()
        graph = tprime_data_graph(6, 20, seed=4)
        forest = WDPatternForest([tprime_tree(2)])
        first = session.solutions(forest, graph)
        before = session.cache.statistics.enum_hits
        second = session.solutions(forest, graph)
        assert second == first and second is not first
        assert session.cache.statistics.enum_hits > before


class TestSolutionsIter:
    def _workload(self):
        graphs = [tprime_data_graph(6, 20, seed=11), tprime_data_graph(5, 15, seed=12)]
        repeated = WDPatternForest([tprime_tree(2)])
        patterns = [
            repeated,
            WDPatternForest([tprime_tree(3)]),
            WDPatternForest([tprime_tree(2)]),  # structurally equal, distinct object
            repeated,  # duplicate cell: same forest object twice
        ]
        return patterns, graphs

    def _collect(self, iterator):
        got = {}
        for cell, mu in iterator:
            got.setdefault(cell, set()).add(mu)
        return got

    @pytest.mark.parametrize("processes", [None, 2])
    @pytest.mark.parametrize("order", ["submitted", "completed"])
    def test_parity_with_solutions_many(self, order, processes):
        patterns, graphs = self._workload()
        session = Session()
        matrix = session.solutions_many(patterns, graphs)
        got = self._collect(
            Session().solutions_iter(patterns, graphs, order=order, processes=processes)
        )
        for i in range(len(patterns)):
            for j in range(len(graphs)):
                assert got.get((i, j), set()) == matrix[i][j], (order, processes, i, j)

    def test_single_graph_cells_use_graph_index_zero(self):
        patterns, graphs = self._workload()
        session = Session()
        flat = session.solutions_many(patterns, graphs[0])
        got = self._collect(session.solutions_iter(patterns, graphs[0]))
        assert all(cell[1] == 0 for cell in got)
        for i in range(len(patterns)):
            assert got.get((i, 0), set()) == flat[i]

    def test_submitted_order_is_submission_order(self):
        patterns, graphs = self._workload()
        cells_seen = []
        for cell, _mu in Session().solutions_iter(patterns, graphs, order="submitted"):
            if not cells_seen or cells_seen[-1] != cell:
                cells_seen.append(cell)
        assert cells_seen == sorted(cells_seen)

    def test_serial_first_occurrence_streams_lazily(self):
        """The first solutions arrive before later cells are evaluated."""
        session = Session()
        graph = tprime_data_graph(6, 20, seed=11)
        full = WDPatternForest([tprime_tree(2)])
        iterator = session.solutions_iter([full, WDPatternForest([tprime_tree(3)])], graph)
        cell, mu = next(iterator)
        assert cell == (0, 0)
        assert mu in Engine(forest=full).solutions(graph, method="naive")

    def test_invalid_order_rejected(self):
        session = Session()
        with pytest.raises(EvaluationError):
            next(session.solutions_iter([WDPatternForest([tprime_tree(2)])],
                                        tprime_data_graph(5, 15, seed=1), order="random"))


class TestSolutionsAutoBugfix:
    """`Engine.solutions(method="auto")` used to raise; it must resolve to
    the natural strategy everywhere the method argument is accepted."""

    def test_engine_solutions_auto(self):
        graph = tprime_data_graph(6, 20, seed=2)
        engine = Engine(forest=WDPatternForest([tprime_tree(2)]), width_bound=1)
        assert engine.solutions(graph, method="auto") == engine.solutions(
            graph, method="natural"
        )

    def test_batch_engine_solutions_auto(self):
        graph = tprime_data_graph(6, 20, seed=2)
        batch = BatchEngine(forest=WDPatternForest([tprime_tree(2)]), width_bound=1)
        assert batch.solutions(graph, method="auto") == batch.solutions(graph, method="natural")


class TestBatchEngineAdapter:
    def test_from_session_shares_cache(self):
        session = Session()
        batch = BatchEngine.from_session(session, parse_pattern("(?x p ?y)"))
        assert batch.cache is session.cache
        assert batch.session is session

    def test_warm_returns_kernel_count(self, setting):
        forest, graph, _engine, _queries = setting
        session = Session()
        handle = session.engine(forest, width_bound=1)
        # No mappings: warming covers the root-subtree child instances.
        count = session.warm(handle, graph, method="pebble", width=1)
        assert count > 0
        assert session.cache.statistics.kernel_misses > 0

    def test_session_cache_reused_by_adapter(self):
        cache = EvaluationCache()
        batch = BatchEngine(parse_pattern("(?x p ?y)"), cache=cache)
        assert batch.cache is cache
        assert batch.session.cache is cache


class TestPicklability:
    def test_graph_pattern_round_trips(self):
        import pickle

        pattern = parse_pattern("(((?x p ?y) AND (?y q ?z)) OPT ((?z r ?w) UNION (?z p ?w)))")
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone == pattern

    def test_engine_round_trips(self):
        import pickle

        graph = tprime_data_graph(6, 20, seed=4)
        engine = Engine(forest=WDPatternForest([tprime_tree(2)]), width_bound=1)
        engine.domination_width()
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.width_bound == engine.width_bound
        assert clone.resolve_method("auto") == engine.resolve_method("auto")
        assert clone.solutions(graph, method="natural") == engine.solutions(
            graph, method="natural"
        )

    def test_warmed_session_engine_still_pickles(self):
        import pickle

        graph = tprime_data_graph(6, 20, seed=4)
        session = Session()
        engine = session.engine(WDPatternForest([tprime_tree(2)]), width_bound=1)
        mu = sorted(session.solutions(engine, graph), key=repr)[0]
        # A pebble check caches a ConsistencyKernel (which holds a graph
        # weakref); pickling must still work — the cache is process-local
        # state and is dropped from the pickle.
        session.check(engine, graph, mu, method="pebble", width=1)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.cache is None
        assert clone.contains(graph, mu, method="pebble", width=1) == engine.contains(
            graph, mu, method="pebble", width=1
        )


class TestWorkerMode:
    """The effective parallel mode is introspectable, and a warm_on_fork
    request that cannot engage (non-fork start methods) warns once instead
    of silently running cold."""

    def test_serial_when_no_pool_would_run(self):
        assert Session().worker_mode() == "serial"
        assert Session(processes=2).worker_mode(processes=1) == "serial"
        assert Session().worker_mode(processes=1) == "serial"

    def test_fork_modes(self):
        import multiprocessing

        if multiprocessing.get_context().get_start_method() != "fork":
            pytest.skip("needs the fork start method")
        assert Session(processes=2).worker_mode() == "fork-warm"
        assert Session(processes=2, warm_on_fork=False).worker_mode() == "fork-cold"
        assert Session().worker_mode(processes=4) == "fork-warm"

    def test_non_fork_reports_start_method(self, monkeypatch):
        from repro.evaluation import session as session_module

        monkeypatch.setattr(session_module, "_start_method", lambda: "spawn")
        assert Session(processes=2).worker_mode() == "spawn"
        assert Session(processes=2, warm_on_fork=False).worker_mode() == "spawn"
        assert Session().worker_mode() == "serial"  # still no pool

    def test_repr_shows_worker_mode(self):
        assert "workers=serial" in repr(Session())

    def _spawn_platform(self, monkeypatch):
        """Pretend the start method is spawn (pools still fork underneath —
        only the warm/warn decision is driven by the monkeypatched seam)."""
        from repro.evaluation import session as session_module

        monkeypatch.setattr(session_module, "_start_method", lambda: "spawn")
        monkeypatch.setattr(session_module, "_warned_cold_pool", False)
        return session_module

    def test_warm_on_fork_noop_warns_once(self, monkeypatch):
        import warnings as warnings_module

        self._spawn_platform(monkeypatch)
        graph = tprime_data_graph(6, 20, seed=9)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        session = Session(processes=2)
        with pytest.warns(RuntimeWarning, match="warm_on_fork=True has no effect"):
            first = session.solutions_many(patterns, graph)
        # One-time: the second cold pool (even on a fresh session) is silent.
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            second = Session(processes=2).solutions_many(patterns, graph)
        assert first == second == Session().solutions_many(patterns, graph)

    def test_membership_pool_also_warns(self, monkeypatch, setting):
        self._spawn_platform(monkeypatch)
        forest, graph, engine, queries = setting
        session = Session()
        with pytest.warns(RuntimeWarning, match="worker pools start cold"):
            answers = session.check_many(forest, graph, queries, processes=2)
        assert answers == [engine.contains(graph, mu) for mu in queries]

    def test_cold_by_choice_does_not_warn(self, monkeypatch):
        import warnings as warnings_module

        self._spawn_platform(monkeypatch)
        graph = tprime_data_graph(6, 20, seed=9)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            Session(processes=2, warm_on_fork=False).solutions_many(patterns, graph)


class TestCheckIter:
    def test_serial_parity_with_check_many(self, setting):
        forest, graph, engine, queries = setting
        queries = queries + queries[:2]  # repeated mappings replay
        session = Session()
        expected = session.check_many(forest, graph, queries)
        assert list(Session().check_iter(forest, graph, queries)) == expected

    def test_parallel_parity_with_check_many(self, setting):
        forest, graph, engine, queries = setting
        expected = Session().check_many(forest, graph, queries)
        assert list(Session().check_iter(forest, graph, queries, processes=2)) == expected

    def test_empty_batch(self, setting):
        forest, graph, _engine, _queries = setting
        assert list(Session().check_iter(forest, graph, [])) == []

    def test_verdicts_stream_before_exhaustion(self, setting):
        forest, graph, engine, queries = setting
        iterator = Session().check_iter(forest, graph, queries)
        assert next(iterator) == engine.contains(graph, queries[0])

    def test_parallel_absorbs_membership_deltas(self, setting):
        forest, graph, _engine, queries = setting
        session = Session()
        session.check_many(forest, graph, queries, processes=2)
        assert session.cache.statistics.delta_entries > 0
        # The absorbed verdicts replay without re-deriving them: a serial
        # re-check of the same batch is answered from the parent cache.
        hits_before = session.cache.statistics.hits
        session.check_many(forest, graph, queries)
        assert session.cache.statistics.hits > hits_before


class TestReturnChannel:
    """Workers ship their learned state back as CacheDeltas; the parent
    absorbs them, so repeated parallel batches replay from the parent cache
    instead of recomputing (the PR 5 acceptance criterion)."""

    def _workload(self):
        graph = tprime_data_graph(6, 20, seed=21)
        patterns = [
            WDPatternForest([tprime_tree(2)]),
            WDPatternForest([tprime_tree(3)]),
            WDPatternForest([tprime_tree(4)]),
        ]
        return patterns, graph

    def test_second_parallel_solutions_many_hits_parent_cache(self):
        patterns, graph = self._workload()
        session = Session()
        first = session.solutions_many(patterns, graph, processes=2)
        assert session.cache.statistics.delta_entries > 0
        hits_before = session.cache.statistics.enum_hits
        second = session.solutions_many(patterns, graph, processes=2)
        assert session.cache.statistics.enum_hits > hits_before
        assert second == first == Session().solutions_many(patterns, graph)

    def test_parallel_worker_answer_lists_absorbed(self):
        patterns, graph = self._workload()
        session = Session(warm_on_fork=False)  # cold workers: all learning
        session.solutions_many(patterns, graph, processes=2)  # returns via deltas
        for forest in patterns:
            for tree in forest:
                assert session.cache.tree_solution_list(tree, graph) is not None

    def test_second_parallel_solutions_iter_replays(self):
        patterns, graph = self._workload()
        session = Session()
        first = {}
        for cell, mu in session.solutions_iter(patterns, graph, processes=2):
            first.setdefault(cell, set()).add(mu)
        assert session.cache.statistics.delta_entries > 0
        hits_before = session.cache.statistics.enum_hits
        second = {}
        for cell, mu in session.solutions_iter(patterns, graph, processes=2):
            second.setdefault(cell, set()).add(mu)
        assert session.cache.statistics.enum_hits > hits_before
        assert second == first

    def test_warm_replay_still_rejects_invalid_methods(self):
        """A warm session (every cell replayable) must reject bad methods
        exactly like a cold one — validation happens before the replay
        short-circuit, not only when a pool is actually created."""
        patterns, graph = self._workload()
        session = Session()
        session.solutions_many(patterns, graph, processes=2)  # warm the parent
        with pytest.raises(EvaluationError):
            session.solutions_many(patterns, graph, method="pebble", processes=2)
        with pytest.raises(EvaluationError):
            list(session.solutions_iter(patterns, graph, method="bogus", processes=2))

    def test_serial_warmup_then_parallel_batch_replays_without_pool(self):
        """A serially warmed parent answers every cell from its own cache:
        the pool is never created (replay is pool-free by construction)."""
        patterns, graph = self._workload()
        session = Session()
        serial = session.solutions_many(patterns, graph)
        hits_before = session.cache.statistics.enum_hits
        parallel = session.solutions_many(patterns, graph, processes=2)
        assert parallel == serial
        assert session.cache.statistics.enum_hits > hits_before
        # No deltas were shipped because no worker ever ran.
        assert session.cache.statistics.deltas_absorbed == 0


class TestCrossProcessStreaming:
    """Parallel solutions_iter streams *within* a cell: fixed-size chunks
    cross the process boundary while the worker is still enumerating."""

    def _single_cell(self):
        graph = tprime_data_graph(7, 30, seed=23)
        forest = WDPatternForest([tprime_tree(2)])
        return forest, graph

    def test_chunks_arrive_before_the_cell_finishes(self):
        forest, graph = self._single_cell()
        session = Session()
        engine = session.engine(forest)
        expected = Engine(forest=forest).solutions(graph, method="natural")
        assert len(expected) > 3  # multi-solution workload, else vacuous
        distinct = session._distinct_cells([engine], [graph])
        events = list(session._stream_distinct(distinct, "natural", 2, 1))
        tags = [event[0] for event in events]
        # More than one chunk per cell, every chunk before the done event:
        # the consumer sees solutions while the worker is still enumerating.
        assert tags.count("chunk") == len(expected)
        assert tags[-1] == "done" and "done" not in tags[:-1]
        streamed = [mu for tag, _key, mappings in events if tag == "chunk" for mu in mappings]
        assert len(streamed) == len(expected)
        assert set(streamed) == expected

    def test_first_solution_yields_before_exhaustion(self):
        """Two distinct cells engage the pool; the first solution of the
        front cell surfaces while both workers are still enumerating."""
        forest, graph = self._single_cell()
        other = WDPatternForest([tprime_tree(3)])
        expected = Engine(forest=forest).solutions(graph, method="natural")
        iterator = Session().solutions_iter(
            [forest, other], graph, processes=2, chunk_size=1
        )
        cell, mu = next(iterator)
        assert cell == (0, 0) and mu in expected
        rest = {}
        for later_cell, later_mu in iterator:
            rest.setdefault(later_cell, set()).add(later_mu)
        assert rest[(0, 0)] == expected - {mu}
        assert rest[(1, 0)] == Engine(forest=other).solutions(graph, method="natural")

    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    @pytest.mark.parametrize("order", ["submitted", "completed"])
    def test_parity_across_chunk_sizes(self, order, chunk_size):
        graphs = [tprime_data_graph(6, 20, seed=11), tprime_data_graph(5, 15, seed=12)]
        repeated = WDPatternForest([tprime_tree(2)])
        patterns = [repeated, WDPatternForest([tprime_tree(3)]), repeated]
        matrix = Session().solutions_many(patterns, graphs)
        got = {}
        for cell, mu in Session().solutions_iter(
            patterns, graphs, order=order, processes=2, chunk_size=chunk_size
        ):
            got.setdefault(cell, set()).add(mu)
        for i in range(len(patterns)):
            for j in range(len(graphs)):
                assert got.get((i, j), set()) == matrix[i][j], (order, chunk_size, i, j)

    def test_session_default_chunk_size(self):
        forest, graph = self._single_cell()
        other = WDPatternForest([tprime_tree(3)])
        session = Session(stream_chunk_size=2)
        expected = Session().solutions_many([forest, other], graph)
        got = {}
        for cell, mu in session.solutions_iter([forest, other], graph, processes=2):
            got.setdefault(cell, set()).add(mu)
        assert [got.get((i, 0), set()) for i in range(2)] == expected

    def test_invalid_chunk_sizes_rejected(self):
        forest, graph = self._single_cell()
        with pytest.raises(EvaluationError):
            Session(stream_chunk_size=0)
        with pytest.raises(EvaluationError):
            next(Session().solutions_iter([forest], graph, processes=2, chunk_size=0))


class TestMutationSafety:
    """Version-snapshot regressions: a graph mutated mid-iteration (serial
    or parallel) must never leave stale entries in the parent cache."""

    def _mutate(self, graph):
        graph.add(Triple.of(str(EX["fresh"]), str(EX["fresh"]), str(EX["fresh"])))

    def _fresh_answers(self, forest, graph):
        return Engine(forest=forest).solutions(graph, method="natural")

    def test_serial_solutions_iter_mutation_between_cells(self):
        graph = tprime_data_graph(6, 20, seed=25)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        session = Session()
        iterator = session.solutions_iter(patterns, graph)
        seen = {}
        mutated = False
        for cell, mu in iterator:
            if cell[0] == 1 and not mutated:
                # First solution of the second cell: mutate before draining.
                self._mutate(graph)
                mutated = True
            seen.setdefault(cell, set()).add(mu)
        # The cache must answer for the graph as it is *now*: fresh
        # enumerations replay nothing stale.
        for i, forest in enumerate(patterns):
            assert session.solutions(forest, graph) == self._fresh_answers(forest, graph)

    def test_serial_solutions_iter_mutation_mid_cell_does_not_poison(self):
        graph = tprime_data_graph(6, 20, seed=25)
        forest = WDPatternForest([tprime_tree(2)])
        session = Session()
        iterator = session.solutions_iter([forest], graph)
        next(iterator)
        self._mutate(graph)  # mid-cell: the stream's recording must be aborted
        for _ in iterator:
            pass
        (tree,) = list(forest)
        assert session.cache.tree_solution_list(tree, graph) is None
        assert session.solutions(forest, graph) == self._fresh_answers(forest, graph)

    def test_parallel_solutions_iter_mutation_drops_stale_deltas(self):
        graph = tprime_data_graph(7, 30, seed=27)
        forest = WDPatternForest([tprime_tree(2)])
        other = WDPatternForest([tprime_tree(3)])  # second distinct cell: pool engages
        session = Session()
        assert len(self._fresh_answers(forest, graph)) > 1
        iterator = session.solutions_iter(
            [forest, other], graph, processes=2, chunk_size=1
        )
        next(iterator)  # the front cell's first chunk is out; workers are mid-cell
        self._mutate(graph)  # parent-side mutation; the workers' copies are stale
        for _ in iterator:
            pass
        # The front cell's delta arrives after its last chunk — post-mutation
        # by construction — stamped with the pre-mutation version: dropped
        # whole, never merged.
        assert session.cache.statistics.delta_entries_stale > 0
        for tree in list(forest) + list(other):
            assert session.cache.tree_solution_list(tree, graph) is None
        assert session.solutions(forest, graph) == self._fresh_answers(forest, graph)
        assert session.solutions(other, graph) == self._fresh_answers(other, graph)

    def test_parallel_solutions_many_after_mutation_recomputes(self):
        graph = tprime_data_graph(6, 20, seed=29)
        patterns = [WDPatternForest([tprime_tree(2)]), WDPatternForest([tprime_tree(3)])]
        session = Session()
        session.solutions_many(patterns, graph, processes=2)  # absorb deltas
        self._mutate(graph)
        answers = session.solutions_many(patterns, graph, processes=2)
        assert answers == [self._fresh_answers(forest, graph) for forest in patterns]

    def _mutate_bulk(self, graph):
        """One add_all batch: a single version bump for several new triples."""
        graph.add_all(
            Triple.of(str(EX[f"bulk{i}"]), str(EX["bulk"]), str(EX[f"bulk{i + 1}"]))
            for i in range(3)
        )

    def test_serial_solutions_iter_bulk_mutation_mid_cell_does_not_poison(self):
        """Incremental index maintenance must not weaken the version fence:
        an add_all mid-cell aborts the stream's recording exactly like a
        chain of single adds used to."""
        graph = tprime_data_graph(6, 20, seed=25)
        forest = WDPatternForest([tprime_tree(2)])
        session = Session()
        iterator = session.solutions_iter([forest], graph)
        next(iterator)
        version = graph.version
        self._mutate_bulk(graph)
        assert graph.version == version + 1  # the batch bumps exactly once
        for _ in iterator:
            pass
        (tree,) = list(forest)
        assert session.cache.tree_solution_list(tree, graph) is None
        assert session.solutions(forest, graph) == self._fresh_answers(forest, graph)

    def test_parallel_solutions_iter_bulk_mutation_drops_stale_deltas(self):
        graph = tprime_data_graph(7, 30, seed=27)
        forest = WDPatternForest([tprime_tree(2)])
        other = WDPatternForest([tprime_tree(3)])
        session = Session()
        iterator = session.solutions_iter(
            [forest, other], graph, processes=2, chunk_size=1
        )
        next(iterator)
        self._mutate_bulk(graph)  # one bump; the in-flight stamps predate it
        for _ in iterator:
            pass
        assert session.cache.statistics.delta_entries_stale > 0
        for tree in list(forest) + list(other):
            assert session.cache.tree_solution_list(tree, graph) is None
        assert session.solutions(forest, graph) == self._fresh_answers(forest, graph)
