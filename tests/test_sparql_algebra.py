"""Unit tests for the AND/OPT/UNION algebra AST."""

import pytest

from repro.rdf.terms import Variable
from repro.sparql.algebra import And, Opt, TriplePatternNode, Union, conj, opt_chain, tp, union_of


class TestConstruction:
    def test_tp_builds_leaf(self):
        leaf = tp("?x", "p", "?y")
        assert isinstance(leaf, TriplePatternNode)
        assert leaf.variables() == {Variable("x"), Variable("y")}

    def test_combinators(self):
        p = tp("?x", "p", "?y").and_(tp("?y", "q", "?z")).opt(tp("?z", "r", "?w"))
        assert isinstance(p, Opt)
        assert isinstance(p.left, And)

    def test_conj_left_deep(self):
        p = conj([tp("?a", "p", "?b"), tp("?b", "p", "?c"), tp("?c", "p", "?d")])
        assert isinstance(p, And)
        assert isinstance(p.left, And)

    def test_conj_single(self):
        leaf = tp("?a", "p", "?b")
        assert conj([leaf]) is leaf

    def test_conj_empty_raises(self):
        with pytest.raises(ValueError):
            conj([])

    def test_union_of(self):
        p = union_of([tp("?a", "p", "?b"), tp("?a", "q", "?b")])
        assert isinstance(p, Union)

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            union_of([])

    def test_opt_chain(self):
        p = opt_chain(tp("?a", "p", "?b"), tp("?b", "q", "?c"), tp("?c", "r", "?d"))
        assert isinstance(p, Opt) and isinstance(p.left, Opt)

    def test_operands_must_be_patterns(self):
        with pytest.raises(TypeError):
            And(tp("?a", "p", "?b"), "not a pattern")


class TestStructuralQueries:
    def test_variables_collects_all(self):
        p = tp("?x", "p", "?y").union(tp("?z", "q", "?w"))
        assert p.variables() == {Variable(v) for v in "xyzw"}

    def test_triple_patterns(self):
        p = tp("?x", "p", "?y").and_(tp("?x", "p", "?y"))
        assert len(p.triple_patterns()) == 1  # same triple pattern twice

    def test_operators_and_union_free(self):
        p1 = tp("?x", "p", "?y").opt(tp("?y", "q", "?z"))
        assert p1.operators() == {"OPT"}
        assert p1.is_union_free()
        p2 = p1.union(tp("?x", "p", "?y"))
        assert not p2.is_union_free()

    def test_size_counts_nodes(self):
        p = tp("?x", "p", "?y").and_(tp("?y", "q", "?z"))
        assert p.size() == 3

    def test_subpatterns_preorder(self):
        p = tp("?x", "p", "?y").opt(tp("?y", "q", "?z"))
        subs = list(p.subpatterns())
        assert subs[0] is p
        assert len(subs) == 3


class TestEqualityAndRendering:
    def test_structural_equality(self):
        a = tp("?x", "p", "?y").and_(tp("?y", "q", "?z"))
        b = tp("?x", "p", "?y").and_(tp("?y", "q", "?z"))
        assert a == b
        assert hash(a) == hash(b)

    def test_operator_matters_for_equality(self):
        left = tp("?x", "p", "?y")
        right = tp("?y", "q", "?z")
        assert And(left, right) != Opt(left, right)

    def test_str_contains_operator(self):
        assert "OPT" in str(tp("?x", "p", "?y").opt(tp("?y", "q", "?z")))
        assert "UNION" in str(tp("?x", "p", "?y").union(tp("?y", "q", "?z")))

    def test_immutability(self):
        p = tp("?x", "p", "?y").and_(tp("?y", "q", "?z"))
        with pytest.raises(AttributeError):
            p.left = tp("?a", "p", "?b")
