"""Unit tests for the extended fragment: FILTER conditions, the Filter/Select
operators, safety and extended well-designedness (Section 5 of the paper)."""

import pytest

from repro.exceptions import NotWellDesignedError
from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX
from repro.rdf.terms import IRI, Variable
from repro.sparql import (
    Filter,
    Select,
    bound,
    check_well_designed_extended,
    core_fragment_of,
    eq,
    is_safe,
    is_well_designed_extended,
    neq,
    parse_pattern,
    tp,
    Mapping,
)
from repro.evaluation import evaluate_extended, extended_pattern_contains, evaluate_pattern


def m(**bindings):
    return Mapping({Variable(k): IRI(v) for k, v in bindings.items()})


class TestConditions:
    def test_eq_on_bound_variables(self):
        condition = eq("?x", "?y")
        assert condition.evaluate(m(x="a", y="a"))
        assert not condition.evaluate(m(x="a", y="b"))

    def test_eq_with_constant(self):
        condition = eq("?x", "a")
        assert condition.evaluate(m(x="a"))
        assert not condition.evaluate(m(x="b"))

    def test_unbound_comparison_is_false(self):
        assert not eq("?x", "?y").evaluate(m(x="a"))
        assert not neq("?x", "?y").evaluate(m(x="a"))

    def test_neq(self):
        assert neq("?x", "?y").evaluate(m(x="a", y="b"))
        assert not neq("?x", "?y").evaluate(m(x="a", y="a"))

    def test_bound(self):
        assert bound("?x").evaluate(m(x="a"))
        assert not bound("?x").evaluate(m(y="a"))

    def test_bound_requires_variable(self):
        with pytest.raises(TypeError):
            bound("notavariable")

    def test_boolean_combinators(self):
        condition = (eq("?x", "a") & neq("?y", "b")) | ~bound("?z")
        assert condition.evaluate(m(x="a", y="c"))
        assert condition.evaluate(m(x="q", y="b"))  # ?z unbound
        assert condition.variables() == {Variable("x"), Variable("y"), Variable("z")}

    def test_equality_and_hash(self):
        assert eq("?x", "a") == eq("?x", "a")
        assert eq("?x", "a") != neq("?x", "a")
        assert len({eq("?x", "a"), eq("?x", "a")}) == 1

    def test_invalid_operator(self):
        from repro.sparql.filters import Comparison

        with pytest.raises(ValueError):
            Comparison(Variable("x"), Variable("y"), "<")


class TestFilterSelectNodes:
    def test_filter_variables_include_condition(self):
        pattern = Filter(tp("?x", "p", "?y"), eq("?x", "?z"))
        assert Variable("z") in pattern.variables()

    def test_filter_requires_condition(self):
        with pytest.raises(TypeError):
            Filter(tp("?x", "p", "?y"), "not a condition")

    def test_select_projection_deduplicated(self):
        select = Select(tp("?x", "p", "?y"), [Variable("x"), Variable("x")])
        assert select.projection == (Variable("x"),)

    def test_select_requires_projection(self):
        with pytest.raises(ValueError):
            Select(tp("?x", "p", "?y"), [])

    def test_str_rendering(self):
        pattern = Select(Filter(tp("?x", "p", "?y"), eq("?x", "?y")), [Variable("x")])
        text = str(pattern)
        assert "SELECT" in text and "FILTER" in text


class TestSafetyAndWellDesignedness:
    def test_safe_filter(self):
        pattern = Filter(tp("?x", "p", "?y"), neq("?x", "?y"))
        assert is_safe(pattern)
        assert is_well_designed_extended(pattern)

    def test_unsafe_filter_detected(self):
        pattern = Filter(tp("?x", "p", "?y"), eq("?x", "?z"))
        assert not is_safe(pattern)
        assert not is_well_designed_extended(pattern)
        with pytest.raises(NotWellDesignedError):
            check_well_designed_extended(pattern)

    def test_opt_condition_still_checked_below_filter(self):
        base = parse_pattern("(((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?z) AND (?z r ?w)))")
        pattern = Filter(base, neq("?x", "?y"))
        assert not is_well_designed_extended(pattern)

    def test_top_level_select_allowed(self):
        pattern = Select(parse_pattern("((?x p ?y) OPT (?y q ?z))"), [Variable("x")])
        assert is_well_designed_extended(pattern)

    def test_nested_select_rejected(self):
        inner = Select(tp("?x", "p", "?y"), [Variable("x")])
        pattern = inner.and_(tp("?x", "q", "?z"))
        assert not is_well_designed_extended(pattern)

    def test_core_fragment_strips_top_level_select(self):
        base = parse_pattern("((?x p ?y) OPT (?y q ?z))")
        assert core_fragment_of(Select(base, [Variable("x")])) == base

    def test_core_fragment_rejects_filter(self):
        with pytest.raises(NotWellDesignedError):
            core_fragment_of(Filter(tp("?x", "p", "?y"), eq("?x", "?y")))


class TestExtendedEvaluation:
    @pytest.fixture
    def graph(self):
        return RDFGraph(
            [
                Triple.of(EX.a, EX.p, EX.b),
                Triple.of(EX.a, EX.p, EX.a),
                Triple.of(EX.b, EX.q, EX.c),
            ]
        )

    def test_filter_removes_solutions(self, graph):
        base = parse_pattern(f"(?x <{EX.p.value}> ?y)")
        filtered = Filter(base, neq("?x", "?y"))
        assert len(evaluate_extended(base, graph)) == 2
        assert len(evaluate_extended(filtered, graph)) == 1

    def test_filter_with_bound_interacts_with_opt(self, graph):
        base = parse_pattern(f"((?x <{EX.p.value}> ?y) OPT (?y <{EX.q.value}> ?z))")
        only_extended = Filter(base, bound("?z"))
        solutions = evaluate_extended(only_extended, graph)
        assert len(solutions) == 1
        assert all(Variable("z") in mu for mu in solutions)

    def test_select_projects(self, graph):
        base = parse_pattern(f"(?x <{EX.p.value}> ?y)")
        select = Select(base, [Variable("x")])
        solutions = evaluate_extended(select, graph)
        assert solutions == {Mapping({Variable("x"): EX.a})}

    def test_extended_membership(self, graph):
        base = parse_pattern(f"(?x <{EX.p.value}> ?y)")
        filtered = Filter(base, eq("?x", "?y"))
        assert extended_pattern_contains(filtered, graph, Mapping({Variable("x"): EX.a, Variable("y"): EX.a}))
        assert not extended_pattern_contains(filtered, graph, Mapping({Variable("x"): EX.a, Variable("y"): EX.b}))

    def test_extended_evaluator_agrees_with_core_on_core_patterns(self, graph):
        pattern = parse_pattern(f"((?x <{EX.p.value}> ?y) OPT (?y <{EX.q.value}> ?z))")
        assert evaluate_extended(pattern, graph) == evaluate_pattern(pattern, graph)

    def test_filter_can_express_inequality_queries(self, graph):
        """Section 5: FILTER + well-designed patterns express CQs with inequalities
        (here: an injective homomorphism query)."""
        base = parse_pattern(f"((?x <{EX.p.value}> ?y) AND (?x <{EX.p.value}> ?z))")
        injective = Filter(base, neq("?y", "?z"))
        solutions = evaluate_extended(injective, graph)
        assert all(mu[Variable("y")] != mu[Variable("z")] for mu in solutions)
        assert len(solutions) == 2  # (b, a) and (a, b)
