"""Unit tests for solution mappings and their algebra."""

import pytest

from repro.exceptions import EvaluationError
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.mappings import (
    Mapping,
    compatible,
    join_sets,
    left_outer_join_sets,
    merge,
    union_sets,
)


def m(**bindings):
    return Mapping({Variable(k): IRI(v) for k, v in bindings.items()})


class TestMappingBasics:
    def test_domain(self):
        assert m(x="a", y="b").domain() == {Variable("x"), Variable("y")}

    def test_empty_mapping_singleton(self):
        assert Mapping.EMPTY.domain() == frozenset()
        assert len(Mapping.EMPTY) == 0

    def test_of_constructor(self):
        mu = Mapping.of(x="http://example.org/a")
        assert mu[Variable("x")] == IRI("http://example.org/a")

    def test_of_rejects_variables_as_values(self):
        with pytest.raises(TypeError):
            Mapping.of(x="?y")

    def test_rejects_non_variable_keys(self):
        with pytest.raises(TypeError):
            Mapping({IRI("a"): IRI("b")})

    def test_rejects_variable_values(self):
        with pytest.raises(TypeError):
            Mapping({Variable("x"): Variable("y")})

    def test_equality_and_hash(self):
        assert m(x="a") == m(x="a")
        assert len({m(x="a"), m(x="a"), m(x="b")}) == 2

    def test_immutable(self):
        mu = m(x="a")
        with pytest.raises(AttributeError):
            mu._bindings = {}

    def test_get_and_contains(self):
        mu = m(x="a")
        assert Variable("x") in mu
        assert mu.get(Variable("y")) is None

    def test_restrict(self):
        mu = m(x="a", y="b")
        assert mu.restrict([Variable("x")]) == m(x="a")

    def test_extend(self):
        assert m(x="a").extend(Variable("y"), IRI("b")) == m(x="a", y="b")

    def test_extend_conflict_raises(self):
        with pytest.raises(EvaluationError):
            m(x="a").extend(Variable("x"), IRI("b"))

    def test_apply_and_covers(self):
        mu = m(x="a", y="b")
        t = TriplePattern.of("?x", "p", "?y")
        assert mu.covers(t)
        assert mu.apply(t) == TriplePattern.of("a", "p", "b")


class TestCompatibility:
    def test_disjoint_domains_are_compatible(self):
        assert compatible(m(x="a"), m(y="b"))

    def test_agreeing_overlap_is_compatible(self):
        assert compatible(m(x="a", y="b"), m(y="b", z="c"))

    def test_conflicting_overlap_is_incompatible(self):
        assert not compatible(m(x="a"), m(x="b"))

    def test_empty_mapping_compatible_with_everything(self):
        assert compatible(Mapping.EMPTY, m(x="a"))

    def test_merge(self):
        assert merge(m(x="a"), m(y="b")) == m(x="a", y="b")

    def test_merge_incompatible_raises(self):
        with pytest.raises(EvaluationError):
            merge(m(x="a"), m(x="b"))


class TestSetOperations:
    def test_join(self):
        omega1 = {m(x="a"), m(x="b")}
        omega2 = {m(x="a", y="c"), m(x="z", y="d")}
        assert join_sets(omega1, omega2) == {m(x="a", y="c")}

    def test_left_outer_join_keeps_unmatched(self):
        omega1 = {m(x="a"), m(x="b")}
        omega2 = {m(x="a", y="c")}
        result = left_outer_join_sets(omega1, omega2)
        assert result == {m(x="a", y="c"), m(x="b")}

    def test_left_outer_join_empty_right(self):
        omega1 = {m(x="a")}
        assert left_outer_join_sets(omega1, set()) == omega1

    def test_union(self):
        assert union_sets({m(x="a")}, {m(y="b")}) == {m(x="a"), m(y="b")}
