"""Unit tests for the textual pattern syntax (parser and serialiser)."""

import pytest

from repro.exceptions import ParseError
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.algebra import And, Opt, TriplePatternNode, Union
from repro.sparql.parser import parse_pattern, to_text


class TestParsing:
    def test_single_triple(self):
        p = parse_pattern("(?x p ?y)")
        assert isinstance(p, TriplePatternNode)
        assert p.triple_pattern.predicate == IRI("p")

    def test_full_iri(self):
        p = parse_pattern("(?x <http://example.org/p> ?y)")
        assert p.triple_pattern.predicate == IRI("http://example.org/p")

    def test_literal_object(self):
        p = parse_pattern('(?x name "Alice")')
        assert p.triple_pattern.object == Literal("Alice")

    def test_and_opt_union(self):
        p = parse_pattern("((?x p ?y) AND (?y q ?z)) UNION ((?x p ?y) OPT (?y r ?w))")
        assert isinstance(p, Union)
        assert isinstance(p.left, And)
        assert isinstance(p.right, Opt)

    def test_optional_keyword_alias(self):
        p = parse_pattern("(?x p ?y) OPTIONAL (?y q ?z)")
        assert isinstance(p, Opt)

    def test_left_associativity(self):
        p = parse_pattern("(?a p ?b) AND (?b p ?c) AND (?c p ?d)")
        assert isinstance(p, And) and isinstance(p.left, And)

    def test_grouping_overrides_associativity(self):
        p = parse_pattern("(?a p ?b) AND ((?b p ?c) AND (?c p ?d))")
        assert isinstance(p.right, And)

    def test_case_insensitive_keywords(self):
        assert isinstance(parse_pattern("(?a p ?b) and (?b q ?c)"), And)

    def test_dollar_variables(self):
        p = parse_pattern("($x p $y)")
        assert p.variables() == {Variable("x"), Variable("y")}

    def test_error_on_trailing_input(self):
        with pytest.raises(ParseError):
            parse_pattern("(?x p ?y) (?y q ?z)")

    def test_error_on_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_pattern("((?x p ?y) AND (?y q ?z)")

    def test_error_on_keyword_as_term(self):
        with pytest.raises(ParseError):
            parse_pattern("(?x AND ?y)")

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_pattern("(?x p ?y) AND @@@")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as info:
            parse_pattern("(?x p ?y) %")
        assert info.value.position is not None


class TestRoundTrip:
    CASES = [
        "(?x p ?y)",
        "((?x p ?y) AND (?y q ?z))",
        "((?x p ?y) OPT (?z q ?x))",
        "(((?x p ?y) OPT (?z q ?x)) UNION ((?x p ?y) AND (?y r ?w)))",
        '(?x name "Alice")',
        "(?x <http://example.org/very/long#iri> ?y)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_to_text_round_trip(self, text):
        pattern = parse_pattern(text)
        assert parse_pattern(to_text(pattern)) == pattern
