"""Differential parity: the columnar ``RDFGraph`` vs the retained oracle.

The columnar store (:mod:`repro.rdf.graph`) replaced the hash-indexed graph
wholesale; the old implementation is retained verbatim as
:class:`~repro.rdf.reference.ReferenceRDFGraph`.  This suite drives both
stores through the same seeded-random graphs and mutation sequences and
asserts they agree on *everything* observable: triple sets, ``version``
trajectories, ``domain()`` / ``sorted_domain()``, pattern matching,
:class:`~repro.hom.homomorphism.TargetIndex` answers, and homomorphism
answer sets — including under forced key-width widening.
"""

import pickle
import random

import pytest

import repro.rdf.columns as columns_mod
import repro.rdf.graph as graph_mod
from repro.hom.homomorphism import (
    ColumnarTargetIndex,
    TargetIndex,
    all_homomorphisms,
    target_index,
)
from repro.rdf import RDFGraph, ReferenceRDFGraph, Triple, TriplePattern
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable


NODES = [EX.term(f"n{i}") for i in range(14)]
PREDS = [EX.term(p) for p in ("p", "q", "r")]
VARS = [Variable(name) for name in ("x", "y", "z")]


def random_triple(rng):
    return Triple(rng.choice(NODES), rng.choice(PREDS), rng.choice(NODES))


def random_pattern(rng):
    """A pattern mixing ground positions and (often repeated) variables."""
    terms = []
    for pool in (NODES, PREDS, NODES):
        if rng.random() < 0.5:
            terms.append(rng.choice(pool))
        else:
            terms.append(rng.choice(VARS))
    return TriplePattern(*terms)


def canon(bindings):
    """Order-insensitive canonical form of an iterable of binding dicts."""
    return sorted(sorted((str(k), str(v)) for k, v in b.items()) for b in bindings)


def assert_stores_agree(columnar, reference):
    assert len(columnar) == len(reference)
    assert columnar.version == reference.version
    assert columnar.triples() == reference.triples()
    assert frozenset(columnar) == reference.triples()
    assert columnar.domain() == reference.domain()
    assert columnar.sorted_domain() == reference.sorted_domain()
    assert columnar.subjects() == reference.subjects()
    assert columnar.predicates() == reference.predicates()
    assert columnar.objects() == reference.objects()


def run_mutation_sequence(rng, columnar, reference, steps):
    """Apply the same random mutations to both stores, checking as we go."""
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.40:
            t = random_triple(rng)
            columnar.add(t)
            reference.add(t)
        elif roll < 0.60:
            batch = [random_triple(rng) for _ in range(rng.randint(0, 12))]
            columnar.add_all(batch)
            reference.add_all(batch)
        elif roll < 0.80:
            if len(columnar) and rng.random() < 0.7:
                t = rng.choice(sorted(columnar.triples(), key=str))
            else:
                t = random_triple(rng)  # often absent: discard must no-op
            columnar.discard(t)
            reference.discard(t)
        else:
            pat = random_pattern(rng)
            assert frozenset(columnar.matches(pat)) == frozenset(reference.matches(pat))
            assert canon(columnar.solutions(pat)) == canon(reference.solutions(pat))
        assert columnar.version == reference.version
        assert len(columnar) == len(reference)
    assert_stores_agree(columnar, reference)


class TestMutationSequences:
    @pytest.mark.parametrize("seed", range(8))
    def test_stores_stay_in_parity(self, seed):
        rng = random.Random(seed)
        run_mutation_sequence(rng, RDFGraph(), ReferenceRDFGraph(), steps=60)

    @pytest.mark.parametrize("seed", [3, 7])
    def test_bulk_loaded_stores_stay_in_parity(self, seed):
        rng = random.Random(seed)
        triples = [random_triple(rng) for _ in range(150)]
        columnar = RDFGraph.from_triples(triples)
        reference = ReferenceRDFGraph.from_triples(triples)
        assert_stores_agree(columnar, reference)
        run_mutation_sequence(rng, columnar, reference, steps=40)

    def test_copies_are_independent_and_in_parity(self):
        rng = random.Random(42)
        columnar = RDFGraph([random_triple(rng) for _ in range(40)])
        snapshot = columnar.copy()
        before = columnar.triples()
        columnar.add_all([random_triple(rng) for _ in range(20)])
        assert snapshot.triples() == before

    def test_pickle_roundtrip_preserves_triples_and_version(self):
        rng = random.Random(5)
        columnar = RDFGraph([random_triple(rng) for _ in range(60)])
        columnar.add(Triple(EX.term("extra"), PREDS[0], EX.term("extra")))
        clone = pickle.loads(pickle.dumps(columnar))
        assert clone == columnar
        assert clone.version == columnar.version
        assert clone.sorted_domain() == columnar.sorted_domain()


class TestWidening:
    """The same sequences with the packed key width forced tiny, so the
    store widens (and crosses the array -> int-list promotion) mid-run."""

    @pytest.mark.parametrize("seed", range(4))
    def test_widening_preserves_parity(self, seed, monkeypatch):
        monkeypatch.setattr(graph_mod, "_INITIAL_BITS", 2)
        monkeypatch.setattr(columns_mod, "ARRAY_BITS_LIMIT", 2)
        rng = random.Random(seed)
        columnar = RDFGraph()
        run_mutation_sequence(rng, columnar, ReferenceRDFGraph(), steps=60)
        assert columnar._bits > 2, "the sequence never widened the store"

    def test_bulk_load_widens_once_up_front(self, monkeypatch):
        monkeypatch.setattr(graph_mod, "_INITIAL_BITS", 2)
        rng = random.Random(9)
        triples = [random_triple(rng) for _ in range(100)]
        columnar = RDFGraph.from_triples(triples)
        reference = ReferenceRDFGraph.from_triples(triples)
        assert_stores_agree(columnar, reference)
        assert columnar.version == 1

    def test_index_snapshot_survives_widening(self, monkeypatch):
        """An index built pre-widening keeps answering with old-width keys."""
        monkeypatch.setattr(graph_mod, "_INITIAL_BITS", 4)
        rng = random.Random(11)
        columnar = RDFGraph([random_triple(rng) for _ in range(30)])
        index = target_index(columnar)
        frozen = columnar.triples()
        # Force a widening: intern more distinct terms than 2**4.
        columnar.add_all(
            [Triple(EX.term(f"wide{i}"), PREDS[0], EX.term(f"wide{i}")) for i in range(40)]
        )
        assert index.triples == frozen
        for s in (NODES[0], NODES[1]):
            assert frozenset(index.candidates(s, None, None)) == frozenset(
                t for t in frozen if t.subject == s
            )


class TestTargetIndexParity:
    def _indexes(self, seed, triples=120):
        rng = random.Random(seed)
        ts = [random_triple(rng) for _ in range(triples)]
        columnar = RDFGraph.from_triples(ts)
        reference = ReferenceRDFGraph.from_triples(ts)
        columnar_index = target_index(columnar)
        assert isinstance(columnar_index, ColumnarTargetIndex)
        hash_index = TargetIndex(reference.triples())
        return rng, columnar, columnar_index, hash_index

    @pytest.mark.parametrize("seed", range(4))
    def test_candidates_agree_on_every_mask(self, seed):
        rng, _, columnar_index, hash_index = self._indexes(seed)
        assert columnar_index.triples == hash_index.triples
        assert columnar_index.terms == hash_index.terms
        s, p, o = NODES[0], PREDS[0], NODES[1]
        absent = EX.term("never-interned")
        masks = [
            (None, None, None),
            (s, None, None),
            (None, p, None),
            (None, None, o),
            (s, p, None),
            (s, None, o),
            (None, p, o),
            (s, p, o),
            (absent, None, None),
            (None, absent, None),
            (s, p, absent),
        ]
        for mask in masks:
            assert frozenset(columnar_index.candidates(*mask)) == frozenset(
                hash_index.candidates(*mask)
            ), mask

    @pytest.mark.parametrize("seed", range(4))
    def test_pattern_solutions_agree(self, seed):
        rng, _, columnar_index, hash_index = self._indexes(seed)
        x, y = VARS[0], VARS[1]
        fixed_variants = [
            None,
            {},
            {x: NODES[0]},
            {x: NODES[0], y: NODES[1]},
            {x: EX.term("never-interned")},
            {x: Variable("unresolved")},  # non-ground fixed image: no matches
        ]
        for _ in range(12):
            pat = random_pattern(rng)
            for fixed in fixed_variants:
                assert canon(columnar_index.pattern_solutions(pat, fixed)) == canon(
                    hash_index.pattern_solutions(pat, fixed)
                ), (pat, fixed)

    @pytest.mark.parametrize("seed", range(3))
    def test_index_is_a_frozen_snapshot(self, seed):
        rng, columnar, columnar_index, _ = self._indexes(seed)
        frozen = columnar_index.triples
        columnar.add(Triple(EX.term("post"), PREDS[0], EX.term("post")))
        columnar.discard(next(iter(frozen)))
        assert columnar_index.triples == frozen
        assert columnar.triples() != frozen


class TestHomomorphismParity:
    SOURCES = [
        # path of length 2
        [TriplePattern(VARS[0], PREDS[0], VARS[1]), TriplePattern(VARS[1], PREDS[1], VARS[2])],
        # triangle with a repeated variable
        [
            TriplePattern(VARS[0], PREDS[0], VARS[1]),
            TriplePattern(VARS[1], PREDS[0], VARS[2]),
            TriplePattern(VARS[2], PREDS[0], VARS[0]),
        ],
        # self loop
        [TriplePattern(VARS[0], PREDS[2], VARS[0])],
    ]

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("source_id", range(len(SOURCES)))
    def test_answer_sets_agree(self, seed, source_id):
        rng = random.Random(seed)
        ts = [random_triple(rng) for _ in range(80)]
        columnar = RDFGraph.from_triples(ts)
        reference = ReferenceRDFGraph.from_triples(ts)
        source = self.SOURCES[source_id]
        assert canon(all_homomorphisms(source, columnar)) == canon(
            all_homomorphisms(source, reference.triples())
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_answer_sets_agree_with_fixed_bindings(self, seed):
        rng = random.Random(seed)
        ts = [random_triple(rng) for _ in range(80)]
        columnar = RDFGraph.from_triples(ts)
        reference = ReferenceRDFGraph.from_triples(ts)
        source = self.SOURCES[0]
        fixed = {VARS[0]: NODES[0]}
        assert canon(all_homomorphisms(source, columnar, fixed)) == canon(
            all_homomorphisms(source, reference.triples(), fixed)
        )
