"""Unit tests for well-designedness checking (Definition in Section 2)."""

import pytest

from repro.exceptions import NotWellDesignedError
from repro.rdf.terms import Variable
from repro.sparql import (
    check_well_designed,
    find_violation,
    is_well_designed,
    is_union_free_well_designed,
    parse_pattern,
    union_operands,
)
from repro.workloads.families import example1_patterns


class TestExample1:
    """Example 1 of the paper: P1 is well-designed, P2 is not."""

    def test_p1_is_well_designed(self):
        p1, _ = example1_patterns()
        assert is_well_designed(p1)

    def test_p2_is_not_well_designed(self):
        _, p2 = example1_patterns()
        assert not is_well_designed(p2)

    def test_p2_violation_mentions_z(self):
        _, p2 = example1_patterns()
        violation = find_violation(p2)
        assert violation is not None
        assert violation.variable == Variable("z")
        assert violation.kind == "opt-variable"
        assert "z" in violation.describe()


class TestBasicCases:
    def test_single_triple_is_well_designed(self):
        assert is_well_designed(parse_pattern("(?x p ?y)"))

    def test_and_only_is_well_designed(self):
        assert is_well_designed(parse_pattern("((?x p ?y) AND (?y q ?z))"))

    def test_simple_opt_is_well_designed(self):
        assert is_well_designed(parse_pattern("((?x p ?y) OPT (?y q ?z))"))

    def test_opt_with_fresh_variable_ok(self):
        assert is_well_designed(parse_pattern("((?x p ?y) OPT (?z q ?w))"))

    def test_violating_nested_opt(self):
        # ?z appears in the optional part of the inner OPT and again outside it.
        pattern = parse_pattern("(((?x p ?y) OPT (?z q ?x)) AND (?z r ?y))")
        assert not is_well_designed(pattern)

    def test_union_at_top_level_ok(self):
        pattern = parse_pattern("((?x p ?y) OPT (?z q ?x)) UNION (?x r ?y)")
        assert is_well_designed(pattern)

    def test_union_nested_below_opt_rejected(self):
        pattern = parse_pattern("(?x p ?y) OPT ((?x q ?z) UNION (?x r ?z))")
        violation = find_violation(pattern)
        assert violation is not None and violation.kind == "nested-union"

    def test_union_nested_below_and_rejected(self):
        pattern = parse_pattern("(?x p ?y) AND ((?x q ?z) UNION (?x r ?z))")
        assert not is_well_designed(pattern)

    def test_well_designed_example_from_paper_figure2(self):
        from repro.workloads.families import fk_pattern

        assert is_well_designed(fk_pattern(3))


class TestHelpers:
    def test_union_operands_flattens(self):
        pattern = parse_pattern("(?x p ?y) UNION (?x q ?y) UNION (?x r ?y)")
        assert len(union_operands(pattern)) == 3

    def test_union_operands_single(self):
        pattern = parse_pattern("(?x p ?y)")
        assert union_operands(pattern) == [pattern]

    def test_check_raises_with_witness(self):
        _, p2 = example1_patterns()
        with pytest.raises(NotWellDesignedError) as info:
            check_well_designed(p2)
        assert info.value.violation is not None

    def test_check_passes_silently(self):
        p1, _ = example1_patterns()
        check_well_designed(p1)

    def test_is_union_free_well_designed(self):
        p1, _ = example1_patterns()
        assert is_union_free_well_designed(p1)
        union = parse_pattern("(?x p ?y) UNION (?x q ?y)")
        assert is_well_designed(union)
        assert not is_union_free_well_designed(union)
