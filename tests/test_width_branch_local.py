"""Unit tests for branch treewidth (Definition 3), local width and
Proposition 5 (dw = bw for UNION-free patterns)."""

import pytest

from repro.exceptions import WidthComputationError
from repro.patterns import WDPatternForest, build_wdpt
from repro.sparql import parse_pattern
from repro.width import (
    branch_gtgraph,
    branch_treewidth,
    branch_treewidth_of_pattern,
    domination_width,
    local_node_gtgraph,
    local_width,
    local_width_of_forest,
    local_width_of_pattern,
)
from repro.workloads.families import (
    chain_tree,
    fk_forest,
    fk_pattern,
    hard_clique_tree,
    tprime_pattern,
    tprime_tree,
)
from repro.workloads.random_patterns import random_wd_tree


class TestBranchTreewidth:
    def test_single_node_tree(self):
        tree = build_wdpt(parse_pattern("(?x p ?y)"))
        assert branch_treewidth(tree) == 1

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_tprime_family_is_branch_width_one(self, k):
        """Section 3.2: bw(T'_k) = 1 because the branch core collapses onto the self-loop."""
        assert branch_treewidth(tprime_tree(k)) == 1

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_hard_family_branch_width_grows(self, k):
        assert branch_treewidth(hard_clique_tree(k)) == k - 1

    def test_chain_has_branch_width_one(self):
        assert branch_treewidth(chain_tree(4)) == 1

    def test_branch_gtgraph_shape(self):
        tree = tprime_tree(3)
        child = tree.children_of(tree.root)[0]
        gt = branch_gtgraph(tree, child)
        assert gt.distinguished == tree.vars(tree.root)
        assert len(gt.triples()) == len(tree.pat(tree.root)) + len(tree.pat(child))

    def test_branch_gtgraph_of_root_rejected(self):
        tree = tprime_tree(2)
        with pytest.raises(WidthComputationError):
            branch_gtgraph(tree, tree.root)

    def test_pattern_level_api(self):
        assert branch_treewidth_of_pattern(tprime_pattern(4)) == 1

    def test_pattern_level_api_rejects_union(self):
        with pytest.raises(WidthComputationError):
            branch_treewidth_of_pattern(fk_pattern(2))

    def test_per_node_report(self):
        per_node = {}
        branch_treewidth(hard_clique_tree(4), per_node)
        assert list(per_node.values()) == [3]


class TestLocalWidth:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_tprime_local_width_is_k_minus_one(self, k):
        assert local_width(tprime_tree(k)) == k - 1

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_fk_local_width_is_k_minus_one(self, k):
        assert local_width_of_forest(fk_forest(k)) == k - 1

    def test_chain_is_locally_tractable(self):
        assert local_width(chain_tree(5)) == 1

    def test_local_width_of_pattern(self):
        assert local_width_of_pattern(tprime_pattern(4)) == 3

    def test_local_node_gtgraph_distinguished_is_interface(self):
        tree = tprime_tree(3)
        child = tree.children_of(tree.root)[0]
        gt = local_node_gtgraph(tree, child)
        assert gt.distinguished == tree.vars(child) & tree.vars(tree.root)

    def test_local_node_gtgraph_of_root_rejected(self):
        with pytest.raises(ValueError):
            local_node_gtgraph(tprime_tree(2), 0)

    def test_local_tractability_implies_bounded_domination(self):
        """Local width bounds domination width from above (the paper's easy direction)."""
        for depth in (2, 3):
            tree = chain_tree(depth)
            forest = WDPatternForest([tree])
            assert domination_width(forest) <= local_width(tree)


class TestProposition5:
    """dw(P) = bw(P) for UNION-free well-designed patterns."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_tprime_family(self, k):
        tree = tprime_tree(k)
        assert domination_width(WDPatternForest([tree])) == branch_treewidth(tree)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_hard_family(self, k):
        tree = hard_clique_tree(k)
        assert domination_width(WDPatternForest([tree])) == branch_treewidth(tree)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_union_free_patterns(self, seed):
        tree = random_wd_tree(num_nodes=3, seed=seed)
        assert domination_width(WDPatternForest([tree])) == branch_treewidth(tree)

    def test_gap_between_general_and_union_free(self):
        """For general (UNION) patterns the trivial per-member bound fails:
        GtG(T1[r1]) of F_k contains a member of ctw = k-1, yet dw = 1."""
        from repro.hom import ctw
        from repro.patterns.gtg import gtg

        forest = fk_forest(4)
        members = gtg(forest, forest[0].root_subtree())
        assert max(ctw(member) for member in members) == 3
        assert domination_width(forest) == 1
