"""Unit tests for the tractability classification API."""

import pytest

from repro.patterns import WDPatternForest
from repro.sparql import parse_pattern
from repro.width import classify_family, classify_forest, classify_pattern
from repro.workloads.families import fk_forest, fk_pattern, hard_clique_tree, tprime_tree


class TestClassifyPattern:
    def test_simple_pattern(self):
        report = classify_pattern(parse_pattern("((?x p ?y) OPT (?y q ?z))"))
        assert report.domination_width == 1
        assert report.branch_treewidth == 1
        assert report.local_width == 1
        assert report.recommended_pebble_width == 1
        assert "dw=1" in report.summary()

    def test_union_pattern_has_no_branch_treewidth(self):
        report = classify_pattern(fk_pattern(3))
        assert report.domination_width == 1
        assert report.branch_treewidth is None
        assert report.local_width == 2
        assert "bw" not in report.summary()

    def test_classify_forest_single_tree(self):
        report = classify_forest(WDPatternForest([tprime_tree(4)]))
        assert report.branch_treewidth == 1
        assert report.domination_width == 1
        assert report.local_width == 3


class TestClassifyFamily:
    def test_bounded_family(self):
        classification = classify_family(fk_forest, parameters=(2, 3, 4))
        assert classification.bounded
        assert classification.width_bound == 1
        assert "PTIME" in classification.table()

    def test_unbounded_family(self):
        classification = classify_family(hard_clique_tree, parameters=(2, 3, 4))
        assert not classification.bounded
        assert classification.width_bound is None
        assert "W[1]" in classification.table()

    def test_family_of_patterns(self):
        classification = classify_family(fk_pattern, parameters=(2, 3))
        assert classification.bounded

    def test_table_contains_every_parameter(self):
        classification = classify_family(tprime_tree, parameters=(2, 3))
        table = classification.table()
        assert "  2 " in table and "  3 " in table
