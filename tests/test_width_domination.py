"""Unit tests for domination width (Definitions 1-2) and its helpers."""

import pytest

from repro.exceptions import WidthComputationError
from repro.hom import GeneralizedTGraph
from repro.patterns import WDPatternForest, wdpf
from repro.sparql import parse_pattern
from repro.width import (
    domination_width,
    domination_width_of_pattern,
    has_domination_width_at_most,
    is_dominating_set,
    is_k_dominated,
    minimum_domination_level,
)
from repro.workloads.families import (
    chain_tree,
    fk_forest,
    fk_pattern,
    hard_clique_tree,
    kk_tgraph,
    tprime_tree,
)


def clique_gtgraph(k, distinguished=()):
    return GeneralizedTGraph.of(kk_tgraph(k), distinguished)


class TestDominatingSets:
    def test_empty_collection_is_dominated(self):
        assert is_dominating_set([], [])
        assert is_k_dominated([], 1)
        assert minimum_domination_level([]) == 1

    def test_self_domination(self):
        member = clique_gtgraph(3)
        assert is_dominating_set([member], [member])

    def test_low_width_member_dominates_high_width_member(self):
        # K2 (a single edge) maps homomorphically into K4.
        low = clique_gtgraph(2)
        high = clique_gtgraph(4)
        assert is_dominating_set([low], [low, high])
        assert is_k_dominated([low, high], 1)
        assert minimum_domination_level([low, high]) == 1

    def test_high_width_member_not_dominated(self):
        # K4 alone: its only dominator is itself (ctw 3).
        high = clique_gtgraph(4)
        assert not is_k_dominated([high], 2)
        assert minimum_domination_level([high]) == 3


class TestDominationWidthOfFamilies:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_fk_forest_has_domination_width_one(self, k):
        """Example 5: dw(F_k) = 1 for every k >= 2."""
        assert domination_width(fk_forest(k)) == 1

    @pytest.mark.parametrize("k", [2, 3])
    def test_fk_pattern_domination_width(self, k):
        assert domination_width_of_pattern(fk_pattern(k)) == 1

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_tprime_family_width_one(self, k):
        assert domination_width(WDPatternForest([tprime_tree(k)])) == 1

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_hard_family_width_grows(self, k):
        assert domination_width(WDPatternForest([hard_clique_tree(k)])) == k - 1

    def test_chain_family_width_one(self):
        assert domination_width(WDPatternForest([chain_tree(3)])) == 1

    def test_single_triple_pattern(self):
        assert domination_width_of_pattern(parse_pattern("(?x p ?y)")) == 1

    def test_per_subtree_report(self):
        per_subtree = {}
        domination_width(fk_forest(2), per_subtree)
        assert per_subtree
        assert all(level >= 1 for level in per_subtree.values())

    def test_requires_nr_normal_form(self):
        from repro.patterns import build_wdpt

        tree = build_wdpt(
            parse_pattern("((?x p ?y) OPT (?y p ?x)) OPT (?x q ?z)"), normalize=False
        )
        with pytest.raises(WidthComputationError):
            domination_width(WDPatternForest([tree]))


class TestBoundedCheck:
    def test_has_domination_width_at_most(self):
        forest = fk_forest(3)
        assert has_domination_width_at_most(forest, 1)
        assert has_domination_width_at_most(forest, 2)
        assert not has_domination_width_at_most(forest, 0)

    def test_hard_family_not_low_width(self):
        forest = WDPatternForest([hard_clique_tree(4)])
        assert not has_domination_width_at_most(forest, 2)
        assert has_domination_width_at_most(forest, 3)
