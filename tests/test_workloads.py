"""Unit tests for the workload generators (paper families, random patterns,
clique instances and their data graphs)."""

import pytest

from repro.patterns import wdpf
from repro.rdf.namespace import EX
from repro.sparql import is_well_designed
from repro.workloads import (
    chain_pattern,
    chain_tree,
    clique_query_data_graph,
    example1_patterns,
    example2_pattern,
    example3_gtgraphs,
    fk_data_graph,
    fk_forest,
    fk_pattern,
    hard_clique_pattern,
    hard_clique_tree,
    kk_tgraph,
    random_host_graph,
    random_union_pattern,
    random_wd_forest,
    random_wd_pattern,
    random_wd_tree,
    tprime_data_graph,
    tprime_pattern,
    tprime_tree,
)
from repro.workloads.families import P_PRED, R_PRED


class TestPaperFamilies:
    def test_kk_tgraph_size(self):
        assert len(kk_tgraph(5)) == 10
        assert len(kk_tgraph(1)) == 0

    def test_kk_tgraph_rejects_zero(self):
        with pytest.raises(ValueError):
            kk_tgraph(0)

    def test_example_families_require_k_at_least_two(self):
        for family in (example3_gtgraphs, fk_forest, fk_pattern, tprime_tree, tprime_pattern,
                       hard_clique_tree, hard_clique_pattern):
            with pytest.raises(ValueError):
                family(1)

    def test_example1_patterns_well_designedness(self):
        p1, p2 = example1_patterns()
        assert is_well_designed(p1)
        assert not is_well_designed(p2)

    def test_example2_pattern_is_well_designed(self):
        assert is_well_designed(example2_pattern(2))

    def test_fk_forest_structure(self):
        forest = fk_forest(4)
        assert len(forest) == 3
        t1 = forest[0]
        assert len(t1.children_of(t1.root)) == 2
        # the K_4 child has 1 + 6 triples
        sizes = sorted(len(t1.pat(c)) for c in t1.children_of(t1.root))
        assert sizes == [1, 7]

    def test_fk_pattern_translates_to_three_trees(self):
        assert len(wdpf(fk_pattern(2))) == 3

    def test_family_patterns_are_well_designed(self):
        for pattern in (fk_pattern(3), tprime_pattern(3), hard_clique_pattern(3), chain_pattern(3)):
            assert is_well_designed(pattern)

    def test_chain_tree_structure(self):
        tree = chain_tree(4)
        assert tree.size() == 4
        assert tree.depth() == 3

    def test_chain_requires_positive_depth(self):
        with pytest.raises(ValueError):
            chain_tree(0)


class TestDataGenerators:
    def test_fk_data_graph_predicates(self):
        graph = fk_data_graph(8, 40, seed=1)
        assert EX.term("p") in graph.predicates()

    def test_fk_data_graph_clique_planted(self):
        graph = fk_data_graph(8, 20, clique_size=3, seed=1)
        clique_members = [EX.term(f"clique{i}") for i in range(3)]
        for i, u in enumerate(clique_members):
            for j, v in enumerate(clique_members):
                if i != j:
                    assert any(t.subject == u and t.object == v for t in graph)

    def test_tprime_data_graph_self_loop(self):
        graph = tprime_data_graph(6, 20, with_self_loop=True, seed=2)
        assert any(t.subject == t.object for t in graph)

    def test_tprime_data_graph_without_self_loop(self):
        graph = tprime_data_graph(6, 0, with_self_loop=False, seed=2)
        assert len(graph) == 0

    def test_clique_query_data_graph_anchor(self):
        host = random_host_graph(5, 0.5, seed=1)
        graph = clique_query_data_graph(host)
        anchors = [t for t in graph if t.predicate.value == P_PRED]
        assert len(anchors) == 1
        r_triples = [t for t in graph if t.predicate.value == R_PRED]
        assert len(r_triples) == 2 * host.number_of_edges()

    def test_clique_query_data_graph_rejects_non_graph(self):
        with pytest.raises(TypeError):
            clique_query_data_graph("not a graph")


class TestRandomPatterns:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_tree_is_valid_and_nr(self, seed):
        tree = random_wd_tree(num_nodes=4, seed=seed)
        assert tree.is_nr_normal_form()
        assert tree.size() >= 1

    def test_random_tree_deterministic_under_seed(self):
        a = random_wd_tree(num_nodes=4, seed=11)
        b = random_wd_tree(num_nodes=4, seed=11)
        assert a.pattern() == b.pattern()

    def test_random_tree_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            random_wd_tree(num_nodes=0)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_patterns_are_well_designed(self, seed):
        assert is_well_designed(random_wd_pattern(num_nodes=3, seed=seed))
        assert is_well_designed(random_union_pattern(num_trees=2, num_nodes=2, seed=seed))

    def test_random_forest_size(self):
        forest = random_wd_forest(num_trees=3, num_nodes=2, seed=1)
        assert len(forest) == 3
